package ldap

import (
	"context"
	"testing"
	"time"
)

func TestStorePutGetRemove(t *testing.T) {
	s := NewStore()
	e := NewEntry(MustParseDN("hn=a, o=g")).Add("objectclass", "computer").Add("hn", "a")
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(MustParseDN("HN=A, O=G"))
	if !ok || got.First("hn") != "a" {
		t.Fatalf("get = %v, %v", got, ok)
	}
	// Mutating the returned copy must not affect the store.
	got.Set("hn", "mutated")
	again, _ := s.Get(e.DN)
	if again.First("hn") != "a" {
		t.Error("store entry aliased to caller copy")
	}
	if !s.Remove(e.DN) || s.Len() != 0 {
		t.Error("remove failed")
	}
	if s.Remove(e.DN) {
		t.Error("double remove should report false")
	}
}

func TestStoreRemoveSubtree(t *testing.T) {
	s := NewStore()
	for _, dn := range []string{"o=g", "hn=a, o=g", "q=x, hn=a, o=g", "hn=b, o=g"} {
		if err := s.Put(NewEntry(MustParseDN(dn)).Add("objectclass", "top")); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.RemoveSubtree(MustParseDN("hn=a, o=g")); n != 2 {
		t.Fatalf("removed %d, want 2", n)
	}
	if s.Len() != 2 {
		t.Fatalf("remaining %d", s.Len())
	}
}

func TestStoreSchemaEnforcement(t *testing.T) {
	s := NewStore()
	s.Schema = NewGridSchema()
	bad := NewEntry(MustParseDN("hn=x")).Add("objectclass", "computer") // missing hn
	if err := s.Put(bad); err == nil {
		t.Error("schema violation should be rejected")
	}
}

func TestStoreSubscribe(t *testing.T) {
	s := NewStore()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events := s.Subscribe(ctx, MustParseDN("o=g"), ScopeWholeSubtree, MustParseFilter("(objectclass=computer)"))

	comp := NewEntry(MustParseDN("hn=a, o=g")).Add("objectclass", "computer").Add("hn", "a")
	other := NewEntry(MustParseDN("hn=b, o=elsewhere")).Add("objectclass", "computer").Add("hn", "b")
	nonMatching := NewEntry(MustParseDN("p=l, o=g")).Add("objectclass", "perf").Add("perf", "l")
	for _, e := range []*Entry{comp, other, nonMatching} {
		if err := s.Put(e); err != nil {
			t.Fatal(err)
		}
	}
	ev := <-events
	if ev.Type != ChangeAdd || !ev.Entry.DN.Equal(comp.DN) {
		t.Fatalf("event = %+v", ev)
	}
	// Modify triggers a second event.
	comp.Set("load5", "1.0")
	if err := s.Put(comp); err != nil {
		t.Fatal(err)
	}
	ev = <-events
	if ev.Type != ChangeModify {
		t.Fatalf("event = %+v", ev)
	}
	// Delete is delivered even though the filter references a live entry.
	s.Remove(comp.DN)
	ev = <-events
	if ev.Type != ChangeDelete {
		t.Fatalf("event = %+v", ev)
	}
	// Out-of-scope and non-matching puts produced no events.
	select {
	case ev := <-events:
		t.Fatalf("unexpected event %+v", ev)
	case <-time.After(10 * time.Millisecond):
	}
	cancel()
	// Channel closes after cancellation.
	if _, ok := <-events; ok {
		// Drain any event raced in before close.
		for range events {
		}
	}
}

func TestStoreSubscriberCannotBlockWriters(t *testing.T) {
	s := NewStore()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Subscribe(ctx, DN{}, ScopeWholeSubtree, nil) // never drained
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			e := NewEntry(MustParseDN("hn=h, o=g")).Add("objectclass", "top").Set("i", "x")
			if err := s.Put(e); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("writer blocked by slow subscriber")
	}
}

func TestStoreHandlerAddDeleteModify(t *testing.T) {
	s := NewStore()
	req := &Request{Ctx: context.Background(), State: &ConnState{}}
	e := NewEntry(MustParseDN("hn=a, o=g")).Add("objectclass", "computer").Add("hn", "a")

	if res := s.Add(req, &AddRequest{Entry: e}); res.Code != ResultSuccess {
		t.Fatalf("add: %+v", res)
	}
	if res := s.Add(req, &AddRequest{Entry: e}); res.Code != ResultEntryAlreadyExists {
		t.Fatalf("duplicate add: %+v", res)
	}
	if res := s.Modify(req, &ModifyRequest{DN: "hn=a, o=g", Changes: []ModifyChange{
		{Op: ModReplace, Attr: Attribute{Name: "load5", Values: []string{"2.0"}}},
		{Op: ModAdd, Attr: Attribute{Name: "tag", Values: []string{"x", "y"}}},
		{Op: ModDelete, Attr: Attribute{Name: "tag", Values: []string{"x"}}},
	}}); res.Code != ResultSuccess {
		t.Fatalf("modify: %+v", res)
	}
	got, _ := s.Get(e.DN)
	if got.First("load5") != "2.0" {
		t.Errorf("replace failed: %v", got)
	}
	if vs := got.Values("tag"); len(vs) != 1 || vs[0] != "y" {
		t.Errorf("value delete failed: %v", vs)
	}
	if res := s.Modify(req, &ModifyRequest{DN: "hn=missing", Changes: nil}); res.Code != ResultNoSuchObject {
		t.Fatalf("modify missing: %+v", res)
	}
	if res := s.Delete(req, &DelRequest{DN: "hn=a, o=g"}); res.Code != ResultSuccess {
		t.Fatalf("delete: %+v", res)
	}
	if res := s.Delete(req, &DelRequest{DN: "hn=a, o=g"}); res.Code != ResultNoSuchObject {
		t.Fatalf("delete missing: %+v", res)
	}
	if res := s.Delete(req, &DelRequest{DN: "===bad"}); res.Code != ResultProtocolError {
		t.Fatalf("delete bad dn: %+v", res)
	}
}

type captureWriter struct {
	entries   []*Entry
	controls  [][]Control
	referrals [][]string
}

func (w *captureWriter) SendEntry(e *Entry, cs ...Control) error {
	w.entries = append(w.entries, e)
	w.controls = append(w.controls, cs)
	return nil
}

func (w *captureWriter) SendReferral(urls ...string) error {
	w.referrals = append(w.referrals, urls)
	return nil
}

func TestStoreHandlerSearch(t *testing.T) {
	s := NewStore()
	for i, dn := range []string{"hn=a, o=g", "hn=b, o=g", "hn=c, o=other"} {
		e := NewEntry(MustParseDN(dn)).Add("objectclass", "computer").Add("hn", string(rune('a'+i)))
		if err := s.Put(e); err != nil {
			t.Fatal(err)
		}
	}
	req := &Request{Ctx: context.Background(), State: &ConnState{}}
	w := &captureWriter{}
	res := s.Search(req, &SearchRequest{BaseDN: "o=g", Scope: ScopeWholeSubtree,
		Filter: MustParseFilter("(objectclass=computer)")}, w)
	if res.Code != ResultSuccess || len(w.entries) != 2 {
		t.Fatalf("search: %+v, %d entries", res, len(w.entries))
	}
	// Size limit.
	w = &captureWriter{}
	res = s.Search(req, &SearchRequest{BaseDN: "o=g", Scope: ScopeWholeSubtree, SizeLimit: 1}, w)
	if res.Code != ResultSizeLimitExceeded || len(w.entries) != 1 {
		t.Fatalf("size limit: %+v, %d entries", res, len(w.entries))
	}
	// Bad base DN.
	res = s.Search(req, &SearchRequest{BaseDN: "=bad"}, &captureWriter{})
	if res.Code != ResultProtocolError {
		t.Fatalf("bad base: %+v", res)
	}
}

func TestStorePersistentSearchHandler(t *testing.T) {
	s := NewStore()
	ctx, cancel := context.WithCancel(context.Background())
	req := &Request{Ctx: ctx, State: &ConnState{},
		Controls: []Control{NewPersistentSearchControl(PersistentSearch{
			ChangeTypes: ChangeAll, ChangesOnly: true, ReturnECs: true})}}

	type sent struct {
		e  *Entry
		cs []Control
	}
	ch := make(chan sent, 16)
	w := writerFunc(func(e *Entry, cs ...Control) error {
		ch <- sent{e, cs}
		return nil
	})
	done := make(chan Result, 1)
	go func() {
		done <- s.Search(req, &SearchRequest{BaseDN: "o=g", Scope: ScopeWholeSubtree}, w)
	}()
	// Give the persistent search a moment to subscribe.
	time.Sleep(20 * time.Millisecond)
	e := NewEntry(MustParseDN("hn=new, o=g")).Add("objectclass", "computer").Add("hn", "new")
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-ch:
		if !got.e.DN.Equal(e.DN) {
			t.Errorf("entry = %q", got.e.DN)
		}
		if len(got.cs) != 1 || got.cs[0].OID != OIDEntryChangeNotification {
			t.Errorf("controls = %+v", got.cs)
		}
		typ, err := ParseEntryChange(got.cs[0])
		if err != nil || typ != ChangeAdd {
			t.Errorf("change type = %d, %v", typ, err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no notification")
	}
	cancel()
	select {
	case res := <-done:
		if res.Code != ResultSuccess {
			t.Errorf("final result %+v", res)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("persistent search did not stop on abandon")
	}
}

type writerFunc func(*Entry, ...Control) error

func (f writerFunc) SendEntry(e *Entry, cs ...Control) error { return f(e, cs...) }
func (f writerFunc) SendReferral(...string) error            { return nil }

func TestStoreBindPolicy(t *testing.T) {
	s := NewStore()
	if r := s.Bind(nil, &BindRequest{Version: 3}); r.Code != ResultSuccess {
		t.Errorf("anonymous bind: %+v", r)
	}
	if r := s.Bind(nil, &BindRequest{Version: 3, SASLMech: "GSI"}); r.Code != ResultAuthMethodNotSupported {
		t.Errorf("sasl bind: %+v", r)
	}
	if r := s.Extended(nil, &ExtendedRequest{OID: "1.2.3"}); r.Code != ResultProtocolError {
		t.Errorf("extended: %+v", r)
	}
}
