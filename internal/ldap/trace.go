package ldap

import "mds2/internal/obs"

// NewTraceControl builds the trace-request control a parent hop (or a
// tracing client) attaches to a search. id == "" asks the server to mint a
// fresh trace; depth is the hop distance from the trace origin.
// Non-critical by design: servers without observability ignore it.
func NewTraceControl(id string, depth int) Control {
	return Control{OID: obs.OIDTraceRequest, Value: obs.EncodeTraceRequest(id, depth)}
}

// TraceSpans extracts the span tree a traced server attached to the final
// response (the trace-spans control), or ok=false when absent or garbled.
func TraceSpans(controls []Control) (*obs.TraceExport, bool) {
	ctl, ok := FindControl(controls, obs.OIDTraceSpans)
	if !ok {
		return nil, false
	}
	t, err := obs.DecodeSpans(ctl.Value)
	if err != nil {
		return nil, false
	}
	return t, true
}
