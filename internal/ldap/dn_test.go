package ldap

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseDNBasic(t *testing.T) {
	dn, err := ParseDN("queue=default, hn=hostX")
	if err != nil {
		t.Fatal(err)
	}
	if dn.Depth() != 2 {
		t.Fatalf("depth %d", dn.Depth())
	}
	if dn[0][0].Attr != "queue" || dn[0][0].Value != "default" {
		t.Errorf("leaf = %+v", dn[0])
	}
	if dn[1][0].Attr != "hn" || dn[1][0].Value != "hostX" {
		t.Errorf("parent = %+v", dn[1])
	}
	if got := dn.String(); got != "queue=default, hn=hostX" {
		t.Errorf("String = %q", got)
	}
}

func TestParseDNWhitespaceInsensitive(t *testing.T) {
	a := MustParseDN("hn=hostX,o=grid")
	b := MustParseDN("  hn = hostX ,  o = grid ")
	if !a.Equal(b) {
		t.Errorf("%q != %q", a, b)
	}
}

func TestParseDNMultiValuedRDN(t *testing.T) {
	dn := MustParseDN("cn=alice+uid=42, o=grid")
	if len(dn[0]) != 2 {
		t.Fatalf("leaf AVAs = %d", len(dn[0]))
	}
	if dn[0][1].Attr != "uid" || dn[0][1].Value != "42" {
		t.Errorf("second AVA = %+v", dn[0][1])
	}
	if got := dn.String(); got != "cn=alice+uid=42, o=grid" {
		t.Errorf("String = %q", got)
	}
}

func TestParseDNEscapes(t *testing.T) {
	dn := MustParseDN(`cn=smith\, john, o=grid`)
	if dn.Depth() != 2 {
		t.Fatalf("depth %d: %v", dn.Depth(), dn)
	}
	if dn[0][0].Value != "smith, john" {
		t.Errorf("value = %q", dn[0][0].Value)
	}
	// Round trip through String preserves the escape.
	back := MustParseDN(dn.String())
	if !back.Equal(dn) {
		t.Errorf("round trip %q != %q", back, dn)
	}
}

func TestParseDNErrors(t *testing.T) {
	for _, bad := range []string{"noequals", "=v", "a=", ",", "a=b,,c=d", "a=b, =x"} {
		if _, err := ParseDN(bad); err == nil {
			t.Errorf("ParseDN(%q): expected error", bad)
		}
	}
}

func TestParseDNEmptyIsRoot(t *testing.T) {
	dn, err := ParseDN("")
	if err != nil {
		t.Fatal(err)
	}
	if !dn.IsZero() {
		t.Error("empty string should be root DN")
	}
}

func TestDNEqualCaseInsensitive(t *testing.T) {
	a := MustParseDN("HN=HostX, O=Grid")
	b := MustParseDN("hn=hostx, o=grid")
	if !a.Equal(b) {
		t.Error("case-insensitive comparison failed")
	}
	if a.Normalize() != b.Normalize() {
		t.Error("normalize keys differ")
	}
}

func TestDNParentChild(t *testing.T) {
	host := MustParseDN("hn=hostX, o=grid")
	queue := host.ChildAVA("queue", "default")
	if queue.String() != "queue=default, hn=hostX, o=grid" {
		t.Errorf("child = %q", queue)
	}
	if !queue.Parent().Equal(host) {
		t.Errorf("parent = %q", queue.Parent())
	}
	if !queue.IsDescendantOf(host) {
		t.Error("queue should descend from host")
	}
	if host.IsDescendantOf(queue) {
		t.Error("host should not descend from queue")
	}
	if !queue.IsDescendantOf(DN{}) {
		t.Error("everything descends from root")
	}
	if queue.IsDescendantOf(queue) {
		t.Error("descendant is strict")
	}
}

func TestDNScopes(t *testing.T) {
	base := MustParseDN("o=grid")
	host := MustParseDN("hn=hostX, o=grid")
	queue := MustParseDN("queue=default, hn=hostX, o=grid")
	other := MustParseDN("o=other")

	cases := []struct {
		dn    DN
		scope Scope
		want  bool
	}{
		{base, ScopeBaseObject, true},
		{host, ScopeBaseObject, false},
		{host, ScopeSingleLevel, true},
		{queue, ScopeSingleLevel, false},
		{base, ScopeSingleLevel, false},
		{base, ScopeWholeSubtree, true},
		{host, ScopeWholeSubtree, true},
		{queue, ScopeWholeSubtree, true},
		{other, ScopeWholeSubtree, false},
	}
	for _, tc := range cases {
		if got := tc.dn.WithinScope(base, tc.scope); got != tc.want {
			t.Errorf("%q within %v of %q = %v, want %v", tc.dn, tc.scope, base, got, tc.want)
		}
	}
}

func TestDNRelativeToAndUnder(t *testing.T) {
	center := MustParseDN("o=center1")
	host := MustParseDN("hn=R1, o=center1")
	rel, ok := host.RelativeTo(center)
	if !ok || rel.String() != "hn=R1" {
		t.Fatalf("RelativeTo = %q, %v", rel, ok)
	}
	vo := MustParseDN("o=center1, vo=alliance")
	grafted := rel.Under(vo)
	if grafted.String() != "hn=R1, o=center1, vo=alliance" {
		t.Errorf("Under = %q", grafted)
	}
	if _, ok := host.RelativeTo(MustParseDN("o=center2")); ok {
		t.Error("RelativeTo unrelated ancestor should fail")
	}
	if rel, ok := host.RelativeTo(host); !ok || !rel.IsZero() {
		t.Error("RelativeTo self should be empty relative DN")
	}
}

func TestDNLeaf(t *testing.T) {
	if MustParseDN("hn=x, o=g").Leaf()[0].Value != "x" {
		t.Error("leaf mismatch")
	}
	if (DN{}).Leaf() != nil {
		t.Error("root leaf should be nil")
	}
	if !(DN{}).Parent().IsZero() {
		t.Error("root parent should be root")
	}
}

func TestDNRoundTripQuick(t *testing.T) {
	// For DNs built from arbitrary attr/value strings, String→Parse→Equal
	// must hold (escaping property).
	f := func(attr, value string) bool {
		attr = sanitizeAttr(attr)
		value = strings.TrimSpace(value)
		if attr == "" || value == "" || strings.ContainsAny(value, "\x00\n\r") {
			return true // skip out-of-grammar inputs
		}
		// Values with leading/trailing backslash interplay are exercised in
		// dedicated tests; quick check covers the broad space.
		dn := DN{RDN{{Attr: attr, Value: value}}, RDN{{Attr: "o", Value: "grid"}}}
		back, err := ParseDN(dn.String())
		if err != nil {
			return false
		}
		return back.Equal(dn)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func sanitizeAttr(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' {
			b.WriteRune(r)
		}
	}
	return b.String()
}
