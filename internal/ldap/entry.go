package ldap

import (
	"sort"
	"strconv"
	"strings"
)

// Attribute is a named, multi-valued attribute binding. Names compare
// case-insensitively; values carry caseIgnoreMatch semantics.
type Attribute struct {
	Name   string
	Values []string
}

// Entry is one object in the hierarchical namespace: a distinguished name
// plus a set of typed attribute bindings (Figure 3 of the paper).
type Entry struct {
	DN    DN
	Attrs []Attribute
	// san is the snapshot seal: set when the store publishes this entry as
	// an immutable snapshot; zero-sized outside -tags mdsdebug builds.
	san entrySan
}

// NewEntry returns an entry with the given DN and no attributes.
func NewEntry(dn DN) *Entry { return &Entry{DN: dn} }

// Add appends values to the named attribute, creating it if needed.
func (e *Entry) Add(name string, values ...string) *Entry {
	e.checkMutable()
	for i := range e.Attrs {
		if strings.EqualFold(e.Attrs[i].Name, name) {
			e.Attrs[i].Values = append(e.Attrs[i].Values, values...)
			return e
		}
	}
	e.Attrs = append(e.Attrs, Attribute{Name: name, Values: append([]string(nil), values...)})
	return e
}

// Set replaces the named attribute's values.
func (e *Entry) Set(name string, values ...string) *Entry {
	e.checkMutable()
	for i := range e.Attrs {
		if strings.EqualFold(e.Attrs[i].Name, name) {
			e.Attrs[i].Values = append([]string(nil), values...)
			return e
		}
	}
	return e.Add(name, values...)
}

// Delete removes the named attribute entirely; it is a no-op if absent.
func (e *Entry) Delete(name string) {
	e.checkMutable()
	for i := range e.Attrs {
		if strings.EqualFold(e.Attrs[i].Name, name) {
			e.Attrs = append(e.Attrs[:i], e.Attrs[i+1:]...)
			return
		}
	}
}

// Values returns the values bound to the named attribute (nil if absent).
func (e *Entry) Values(name string) []string {
	for i := range e.Attrs {
		if strings.EqualFold(e.Attrs[i].Name, name) {
			return e.Attrs[i].Values
		}
	}
	return nil
}

// First returns the first value of the named attribute, or "".
func (e *Entry) First(name string) string {
	v := e.Values(name)
	if len(v) == 0 {
		return ""
	}
	return v[0]
}

// Int returns the first value of the named attribute parsed as an integer;
// ok is false when the attribute is absent or non-numeric.
func (e *Entry) Int(name string) (int64, bool) {
	s := e.First(name)
	if s == "" {
		return 0, false
	}
	v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Float returns the first value parsed as a float; ok is false on failure.
func (e *Entry) Float(name string) (float64, bool) {
	s := e.First(name)
	if s == "" {
		return 0, false
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Has reports whether the attribute is present with at least one value.
func (e *Entry) Has(name string) bool { return len(e.Values(name)) > 0 }

// HasValue reports whether the named attribute holds value under
// caseIgnoreMatch comparison.
func (e *Entry) HasValue(name, value string) bool {
	for _, v := range e.Values(name) {
		if strings.EqualFold(v, value) {
			return true
		}
	}
	return false
}

// ObjectClasses returns the entry's objectclass values.
func (e *Entry) ObjectClasses() []string { return e.Values("objectclass") }

// IsA reports whether the entry carries the named object class.
func (e *Entry) IsA(class string) bool { return e.HasValue("objectclass", class) }

// Clone returns a deep copy of the entry.
func (e *Entry) Clone() *Entry {
	out := &Entry{DN: append(DN(nil), e.DN...), Attrs: make([]Attribute, len(e.Attrs))}
	for i, a := range e.Attrs {
		out.Attrs[i] = Attribute{Name: a.Name, Values: append([]string(nil), a.Values...)}
	}
	return out
}

// Select returns a copy of the entry restricted to the requested attribute
// names. An empty or nil request selects all attributes, per RFC 4511; the
// special name "*" likewise selects all. Requested names absent from the
// entry are simply omitted.
func (e *Entry) Select(requested []string) *Entry {
	if len(requested) == 0 {
		return e.Clone()
	}
	for _, r := range requested {
		if r == "*" {
			return e.Clone()
		}
	}
	out := &Entry{DN: append(DN(nil), e.DN...)}
	for _, r := range requested {
		if vs := e.Values(r); vs != nil {
			out.Attrs = append(out.Attrs, Attribute{Name: r, Values: append([]string(nil), vs...)})
		}
	}
	return out
}

// SortAttrs orders the entry's attributes by case-folded name, for
// deterministic serialization and golden tests.
func (e *Entry) SortAttrs() {
	e.checkMutable()
	sort.Slice(e.Attrs, func(i, j int) bool {
		return strings.ToLower(e.Attrs[i].Name) < strings.ToLower(e.Attrs[j].Name)
	})
}

// String renders a compact one-line description for diagnostics.
func (e *Entry) String() string {
	var b strings.Builder
	b.WriteString("dn: ")
	b.WriteString(e.DN.String())
	for _, a := range e.Attrs {
		for _, v := range a.Values {
			b.WriteString("; ")
			b.WriteString(a.Name)
			b.WriteString("=")
			b.WriteString(v)
		}
	}
	return b.String()
}

// SortEntries orders entries by normalized DN, parents before children,
// giving deterministic search-result ordering. Comparison keys are computed
// once per entry: Normalize allocates, and result sets can be large.
func SortEntries(entries []*Entry) {
	if len(entries) < 2 {
		return
	}
	type keyed struct {
		depth int
		key   string
		e     *Entry
	}
	ks := make([]keyed, len(entries))
	for i, e := range entries {
		ks[i] = keyed{depth: len(e.DN), key: e.DN.Normalize(), e: e}
	}
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].depth != ks[j].depth {
			return ks[i].depth < ks[j].depth
		}
		return ks[i].key < ks[j].key
	})
	for i := range ks {
		entries[i] = ks[i].e
	}
}
