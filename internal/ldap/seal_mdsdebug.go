//go:build mdsdebug

package ldap

// Snapshot-seal sanitizer, debug flavor. The store's copy-on-write
// contract says entries handed out by Find/FindLimit/All and delivered in
// ChangeEvents are shared immutable snapshots; mutating one corrupts every
// concurrent reader and the equality indexes. Under -tags mdsdebug each
// snapshot is sealed (a checksum of its contents taken) at the moment it
// is installed in the tree, and
//
//   - the mutating Entry methods (Add, Set, Delete, SortAttrs) panic
//     outright when called on a sealed entry — the earliest, most precise
//     catch;
//   - every hand-out (FindLimit, findScan) and every ChangeEvent delivery
//     re-verifies the checksum, catching raw field/slice writes that
//     bypass the methods.
//
// Clone and Select build fresh keyed literals, so their results carry a
// zero (unsealed) seal and stay freely mutable — exactly the laundering
// contract the snapshotcheck analyzer enforces statically. The release
// twin (seal_release.go) compiles all of this to nothing.

// entrySan is the per-entry seal: zero value means unsealed (mutable).
type entrySan struct {
	sealed bool
	sum    uint64
}

// checksum is FNV-1a over the entry's logical contents.
func (e *Entry) checksum() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * prime
		}
		h = (h ^ 0xff) * prime // terminator so "ab","c" ≠ "a","bc"
	}
	mix(e.DN.Normalize())
	for _, a := range e.Attrs {
		mix(a.Name)
		for _, v := range a.Values {
			mix(v)
		}
	}
	return h
}

// seal freezes the entry: called exactly once, before publication, while
// the store's write lock is held.
func (e *Entry) seal() {
	e.san = entrySan{sealed: true, sum: e.checksum()}
}

// verifySeal panics if a sealed entry's contents changed after publication.
func (e *Entry) verifySeal() {
	if e.san.sealed && e.san.sum != e.checksum() {
		panic("ldap: store snapshot mutated after publication (mdsdebug); Clone or Select before modifying entries from Find or ChangeEvents: " + e.DN.String())
	}
}

// checkMutable panics when a mutating method is invoked on a sealed entry.
func (e *Entry) checkMutable() {
	if e.san.sealed {
		panic("ldap: mutating method called on a sealed store snapshot (mdsdebug); Clone or Select a private copy first: " + e.DN.String())
	}
}

// verifyEntries re-verifies a result set on its way out of the store.
func verifyEntries(es []*Entry) []*Entry {
	for _, e := range es {
		e.verifySeal()
	}
	return es
}

// SealSnapshots extends the store's seal contract to result sets that
// become shared snapshots outside the store — e.g. the qcache query-result
// cache, which hands the same entries to every hit. Entries already sealed
// (store hand-outs flowing through unchanged) are re-verified instead, so
// a mutation between store and cache is still caught; unsealed entries
// (decoded from the wire, grafted, then published) are sealed here. A
// no-op outside -tags mdsdebug.
func SealSnapshots(es []*Entry) {
	for _, e := range es {
		if e.san.sealed {
			e.verifySeal()
			continue
		}
		e.seal()
	}
}
