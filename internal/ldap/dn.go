// Package ldap implements the LDAP data model, query language, and wire
// protocol subset that the MDS-2 architecture adopts for GRIP (the Grid
// Information Protocol) and as the MDS-2.1 transport for GRRP.
//
// The data model follows Figure 3 of the paper: entities are described by
// objects organized in a hierarchical namespace of distinguished names, each
// object tagged with one or more named types (object classes) and holding
// typed attribute-value bindings. Filters implement RFC 4515 semantics, and
// messages follow the RFC 4511 BER layout so that the same bytes flow whether
// a deployment runs over real TCP or the in-process simulated network.
//
// All attribute names are case-insensitive, and values compare with
// caseIgnoreMatch semantics, matching the schema style used by MDS.
package ldap

import (
	"errors"
	"fmt"
	"strings"
)

// AVA is a single attribute-value assertion within an RDN, e.g. hn=hostX.
type AVA struct {
	Attr  string
	Value string
}

// RDN is a relative distinguished name: one or more AVAs (multi-valued RDNs
// use '+' in the string form).
type RDN []AVA

// DN is a distinguished name, leaf RDN first, as in "hn=hostX, o=grid"
// naming hostX under organization grid.
type DN []RDN

// ErrBadDN reports a malformed distinguished-name string.
var ErrBadDN = errors.New("ldap: malformed DN")

// ParseDN parses a string form distinguished name. It accepts the relaxed
// grammar MDS tooling uses: components separated by ',', multi-valued RDNs
// joined by '+', backslash escapes for the special characters ',', '+', '=',
// and '\', and insignificant whitespace around separators.
func ParseDN(s string) (DN, error) {
	s = trimDNSpace(s)
	if s == "" {
		return DN{}, nil
	}
	var dn DN
	for _, comp := range splitUnescaped(s, ',') {
		comp = trimDNSpace(comp)
		if comp == "" {
			return nil, fmt.Errorf("%w: empty RDN in %q", ErrBadDN, s)
		}
		var rdn RDN
		for _, avaStr := range splitUnescaped(comp, '+') {
			avaStr = trimDNSpace(avaStr)
			eq := indexUnescaped(avaStr, '=')
			if eq <= 0 {
				return nil, fmt.Errorf("%w: %q lacks '='", ErrBadDN, avaStr)
			}
			attr := trimDNSpace(avaStr[:eq])
			val := trimDNSpace(avaStr[eq+1:])
			if attr == "" || val == "" {
				return nil, fmt.Errorf("%w: empty attribute or value in %q", ErrBadDN, avaStr)
			}
			rdn = append(rdn, AVA{Attr: unescape(attr), Value: unescape(val)})
		}
		dn = append(dn, rdn)
	}
	return dn, nil
}

// MustParseDN parses s and panics on error; for tests and static tables.
func MustParseDN(s string) DN {
	dn, err := ParseDN(s)
	if err != nil {
		panic(err)
	}
	return dn
}

// dnSpace is the byte set treated as insignificant whitespace around DN
// separators. Kept ASCII so backslash escapes stay byte-oriented.
const dnSpace = " \t\r\n"

func isDNSpace(c byte) bool { return strings.IndexByte(dnSpace, c) >= 0 }

// trimDNSpace strips insignificant whitespace from both ends, leaving
// escaped whitespace (e.g. "cn=a\ ") intact: an escaped boundary space is
// part of the value, and a naive TrimSpace would strand its backslash.
func trimDNSpace(s string) string {
	s = strings.TrimLeft(s, dnSpace)
	end := 0 // bytes to keep
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
			end = i + 1
			continue
		}
		if !isDNSpace(s[i]) {
			end = i + 1
		}
	}
	return s[:end]
}

func splitUnescaped(s string, sep byte) []string {
	var parts []string
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++ // skip escaped char
		case sep:
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	return append(parts, s[start:])
}

func indexUnescaped(s string, c byte) int {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case c:
			return i
		}
	}
	return -1
}

func unescape(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

func escapeDNValue(s string) string {
	if s == "" {
		return s
	}
	if !strings.ContainsAny(s, `,+=\`) && !isDNSpace(s[0]) && !isDNSpace(s[len(s)-1]) {
		return s
	}
	// Boundary whitespace must be escaped or the parser's trim would eat
	// it (and strand a backslash) on the way back in.
	lead := 0
	for lead < len(s) && isDNSpace(s[lead]) {
		lead++
	}
	trail := len(s)
	for trail > lead && isDNSpace(s[trail-1]) {
		trail--
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == ',' || s[i] == '+' || s[i] == '=' || s[i] == '\\':
			b.WriteByte('\\')
		case isDNSpace(s[i]) && (i < lead || i >= trail):
			b.WriteByte('\\')
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// String renders the DN in its canonical string form, leaf-first with
// ", " separators, matching the notation used throughout the paper
// (e.g. "queue=default, hn=hostX").
func (d DN) String() string {
	var b strings.Builder
	for i, rdn := range d {
		if i > 0 {
			b.WriteString(", ")
		}
		for j, ava := range rdn {
			if j > 0 {
				b.WriteByte('+')
			}
			b.WriteString(escapeDNValue(ava.Attr))
			b.WriteByte('=')
			b.WriteString(escapeDNValue(ava.Value))
		}
	}
	return b.String()
}

// Normalize returns the case-folded, whitespace-canonical comparison key of
// the DN. Two DNs name the same entry iff their Normalize outputs are equal.
func (d DN) Normalize() string {
	var b strings.Builder
	for i, rdn := range d {
		if i > 0 {
			b.WriteByte(',')
		}
		for j, ava := range rdn {
			if j > 0 {
				b.WriteByte('+')
			}
			b.WriteString(strings.ToLower(escapeDNValue(ava.Attr)))
			b.WriteByte('=')
			b.WriteString(strings.ToLower(escapeDNValue(ava.Value)))
		}
	}
	return b.String()
}

// Equal reports whether d and o name the same entry.
func (d DN) Equal(o DN) bool { return d.Normalize() == o.Normalize() }

// IsZero reports whether d is the empty (root) DN.
func (d DN) IsZero() bool { return len(d) == 0 }

// Depth returns the number of RDN components.
func (d DN) Depth() int { return len(d) }

// Parent returns the DN with the leaf RDN removed; the parent of a
// single-component DN is the root (empty) DN.
func (d DN) Parent() DN {
	if len(d) == 0 {
		return DN{}
	}
	return d[1:]
}

// Leaf returns the leftmost (leaf) RDN, or nil for the root DN.
func (d DN) Leaf() RDN {
	if len(d) == 0 {
		return nil
	}
	return d[0]
}

// Child returns the DN naming a child of d with the given leaf RDN.
func (d DN) Child(rdn RDN) DN {
	child := make(DN, 0, len(d)+1)
	child = append(child, rdn)
	return append(child, d...)
}

// ChildAVA is shorthand for Child with a single-AVA RDN.
func (d DN) ChildAVA(attr, value string) DN {
	return d.Child(RDN{{Attr: attr, Value: value}})
}

// IsDescendantOf reports whether d is strictly below ancestor in the tree.
// Every non-root DN is a descendant of the root DN.
func (d DN) IsDescendantOf(ancestor DN) bool {
	if len(d) <= len(ancestor) {
		return false
	}
	return DN(d[len(d)-len(ancestor):]).Normalize() == ancestor.Normalize()
}

// WithinScope reports whether d falls inside a search with the given base
// and scope.
func (d DN) WithinScope(base DN, scope Scope) bool {
	switch scope {
	case ScopeBaseObject:
		return d.Equal(base)
	case ScopeSingleLevel:
		return len(d) == len(base)+1 && d.IsDescendantOf(base)
	case ScopeWholeSubtree:
		return d.Equal(base) || d.IsDescendantOf(base)
	}
	return false
}

// RelativeTo returns the RDN components of d below ancestor, leaf first.
// It returns ok=false when d is not a descendant of (or equal to) ancestor.
func (d DN) RelativeTo(ancestor DN) (DN, bool) {
	if d.Equal(ancestor) {
		return DN{}, true
	}
	if !d.IsDescendantOf(ancestor) {
		return nil, false
	}
	rel := make(DN, len(d)-len(ancestor))
	copy(rel, d[:len(d)-len(ancestor)])
	return rel, true
}

// Under grafts the (relative) DN d beneath the new ancestor.
func (d DN) Under(ancestor DN) DN {
	out := make(DN, 0, len(d)+len(ancestor))
	out = append(out, d...)
	return append(out, ancestor...)
}
