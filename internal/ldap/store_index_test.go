package ldap

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// buildRandomStore fills a store with a randomized DN tree: organizations,
// groups, hosts, and per-host documents, with attribute values drawn from
// small vocabularies so filters hit and miss both ways.
func buildRandomStore(t testing.TB, rng *rand.Rand, hosts int) *Store {
	t.Helper()
	s := NewStore()
	classes := []string{"computer", "storage", "network"}
	tags := []string{"red", "blue", "green", "RED"} // mixed case on purpose
	if err := s.Put(NewEntry(MustParseDN("o=grid")).Add("objectclass", "organization")); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 3; g++ {
		e := NewEntry(MustParseDN(fmt.Sprintf("ou=g%d, o=grid", g))).
			Add("objectclass", "organizationalUnit")
		if err := s.Put(e); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < hosts; i++ {
		g := rng.Intn(3)
		dn := MustParseDN(fmt.Sprintf("hn=h%d, ou=g%d, o=grid", i, g))
		e := NewEntry(dn).
			Add("objectclass", classes[rng.Intn(len(classes))]).
			Add("hn", fmt.Sprintf("h%d", i)).
			Add("load", fmt.Sprintf("%d", rng.Intn(20)))
		if rng.Intn(2) == 0 {
			e.Add("tag", tags[rng.Intn(len(tags))])
		}
		if err := s.Put(e); err != nil {
			t.Fatal(err)
		}
		if rng.Intn(4) == 0 {
			doc := NewEntry(MustParseDN(fmt.Sprintf("doc=d%d, hn=h%d, ou=g%d, o=grid", i, i, g))).
				Add("objectclass", "document").
				Add("doc", fmt.Sprintf("d%d", i))
			if err := s.Put(doc); err != nil {
				t.Fatal(err)
			}
		}
	}
	return s
}

// propertyFilters is the filter vocabulary for differential tests: every
// indexable shape (equality, presence, AND, OR) plus every fallback shape
// (NOT, substrings, ordering, approx), and nil.
var propertyFilters = []string{
	"",
	"(objectclass=computer)",
	"(objectclass=COMPUTER)",
	"(tag=red)",
	"(tag=*)",
	"(missing=*)",
	"(missing=nothing)",
	"(&(objectclass=computer)(tag=red))",
	"(&(objectclass=computer)(load>=10))",
	"(|(tag=red)(tag=blue))",
	"(|(tag=red)(load<=3))",
	"(!(objectclass=storage))",
	"(hn=h1*)",
	"(hn=*1)",
	"(hn=*h*)",
	"(load>=15)",
	"(load<=2)",
	"(tag~=red)",
	"(&(|(objectclass=computer)(objectclass=network))(tag=*))",
}

func propertyBases(rng *rand.Rand, hosts int) []string {
	return []string{
		"",
		"o=grid",
		"ou=g1, o=grid",
		fmt.Sprintf("hn=h%d, ou=g%d, o=grid", rng.Intn(hosts), rng.Intn(3)),
		"ou=nosuch, o=grid",
	}
}

// TestStoreFindEqualsScanProperty asserts the central index invariant:
// for randomized stores, bases, scopes, and filters, the indexed Find
// returns exactly what the naive full scan returns, in the same order.
func TestStoreFindEqualsScanProperty(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		hosts := 20 + rng.Intn(60)
		s := buildRandomStore(t, rng, hosts)
		check := func() {
			for _, fs := range propertyFilters {
				var f *Filter
				if fs != "" {
					f = MustParseFilter(fs)
				}
				for _, bs := range propertyBases(rng, hosts) {
					base := MustParseDN(bs)
					for scope := ScopeBaseObject; scope <= ScopeWholeSubtree; scope++ {
						got := s.Find(base, scope, f)
						want := s.findScan(base, scope, f)
						if len(got) != len(want) {
							t.Fatalf("seed %d filter %q base %q scope %d: indexed %d entries, scan %d",
								seed, fs, bs, scope, len(got), len(want))
						}
						for i := range got {
							if !got[i].DN.Equal(want[i].DN) {
								t.Fatalf("seed %d filter %q base %q scope %d: entry %d indexed %q scan %q",
									seed, fs, bs, scope, i, got[i].DN, want[i].DN)
							}
						}
					}
				}
			}
		}
		check()
		// Mutate (removals, subtree removals, modifies via re-Put) and
		// re-check so incremental index maintenance is exercised too.
		for i := 0; i < hosts/3; i++ {
			n := rng.Intn(hosts)
			dn := MustParseDN(fmt.Sprintf("hn=h%d, ou=g%d, o=grid", n, rng.Intn(3)))
			switch rng.Intn(3) {
			case 0:
				s.Remove(dn)
			case 1:
				s.RemoveSubtree(dn)
			case 2:
				e := NewEntry(dn).Add("objectclass", "computer").
					Add("hn", fmt.Sprintf("h%d", n)).Add("tag", "blue")
				if err := s.Put(e); err != nil {
					t.Fatal(err)
				}
			}
		}
		check()
	}
}

// TestStoreFindLimitPrefix asserts that the early-terminating FindLimit
// returns exactly the first N entries of the unlimited result, and that
// the truncated flag fires iff matches were cut off.
func TestStoreFindLimitPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := buildRandomStore(t, rng, 50)
	for _, fs := range propertyFilters {
		var f *Filter
		if fs != "" {
			f = MustParseFilter(fs)
		}
		for _, bs := range propertyBases(rng, 50) {
			base := MustParseDN(bs)
			for scope := ScopeBaseObject; scope <= ScopeWholeSubtree; scope++ {
				full := s.Find(base, scope, f)
				for _, limit := range []int64{0, 1, 2, 7, int64(len(full)), int64(len(full)) + 1} {
					got, truncated := s.FindLimit(base, scope, f, limit)
					want := full
					wantTrunc := false
					if limit > 0 && int64(len(full)) > limit {
						want, wantTrunc = full[:limit], true
					}
					if len(got) != len(want) || truncated != wantTrunc {
						t.Fatalf("filter %q base %q scope %d limit %d: got %d/%v want %d/%v",
							fs, bs, scope, limit, len(got), truncated, len(want), wantTrunc)
					}
					for i := range got {
						if !got[i].DN.Equal(want[i].DN) {
							t.Fatalf("filter %q base %q scope %d limit %d: entry %d = %q, want %q",
								fs, bs, scope, limit, i, got[i].DN, want[i].DN)
						}
					}
				}
			}
		}
	}
}

// TestCompiledFilterEquivalence asserts compiled evaluation agrees with the
// interpreted Filter.Matches across every filter kind, including the
// Unicode corner cases the fold helpers handle.
func TestCompiledFilterEquivalence(t *testing.T) {
	entries := []*Entry{
		NewEntry(MustParseDN("hn=a, o=g")).Add("objectclass", "computer").
			Add("hn", "a").Add("load", "7").Add("tag", "Deep Red"),
		NewEntry(MustParseDN("hn=b, o=g")).Add("objectclass", "STORAGE").
			Add("hn", "b").Add("load", "12.5"),
		NewEntry(MustParseDN("hn=k, o=g")).Add("objectclass", "computer").
			Add("unit", "Kelvin").Add("name", "straße"),
		NewEntry(MustParseDN("hn=n, o=g")).Add("load", "not-a-number"),
		NewEntry(MustParseDN("o=g")),
	}
	filters := append([]string{
		"(objectclass=Computer)",
		"(unit=kelvin)",
		"(name=STRASSE)", // ß does not fold to ss: must miss both ways
		"(tag~=deepred)",
		"(tag~=DEEP red)",
		"(load>=10)",
		"(load<=9)",
		"(load>=aardvark)",
		"(tag=deep*)",
		"(tag=*red)",
		"(tag=*EEP*)",
		"(hn=*)",
		"(&(objectclass=computer)(load>=5))",
		"(|(unit=kelvin)(load<=7))",
		"(!(hn=a))",
	}, propertyFilters[1:]...)
	for _, fs := range filters {
		f := MustParseFilter(fs)
		cf := f.Compile()
		for _, e := range entries {
			if got, want := cf.Matches(e), f.Matches(e); got != want {
				t.Errorf("filter %q entry %q: compiled %v, interpreted %v", fs, e.DN, got, want)
			}
		}
	}
	var nilf *Filter
	if !nilf.Compile().Matches(entries[0]) {
		t.Error("nil compiled filter must match everything")
	}
}

// TestStorePersistentSearchDeleteSemantics pins the watch delivery rules
// for all three change types: scope applies to everything, the filter
// applies to adds and modifies but never deletes, and delete events carry
// the pre-delete snapshot even after the DN is reused.
func TestStorePersistentSearchDeleteSemantics(t *testing.T) {
	s := NewStore()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events := s.Subscribe(ctx, MustParseDN("ou=watched, o=g"), ScopeWholeSubtree,
		MustParseFilter("(objectclass=computer)"))

	next := func() ChangeEvent {
		t.Helper()
		select {
		case ev := <-events:
			return ev
		default:
			t.Fatal("expected a delivered event")
			return ChangeEvent{}
		}
	}
	assertNone := func() {
		t.Helper()
		select {
		case ev := <-events:
			t.Fatalf("unexpected event %d for %q", ev.Type, ev.Entry.DN)
		default:
		}
	}

	inScope := MustParseDN("hn=a, ou=watched, o=g")
	outScope := MustParseDN("hn=b, ou=other, o=g")

	// Add: scope and filter both gate delivery.
	if err := s.Put(NewEntry(inScope).Add("objectclass", "computer").Add("gen", "1")); err != nil {
		t.Fatal(err)
	}
	if ev := next(); ev.Type != ChangeAdd || ev.Entry.First("gen") != "1" {
		t.Fatalf("want ChangeAdd gen=1, got type %d gen %q", ev.Type, ev.Entry.First("gen"))
	}
	if err := s.Put(NewEntry(outScope).Add("objectclass", "computer")); err != nil {
		t.Fatal(err)
	}
	assertNone() // out of scope
	if err := s.Put(NewEntry(MustParseDN("p=x, ou=watched, o=g")).Add("objectclass", "perf")); err != nil {
		t.Fatal(err)
	}
	assertNone() // in scope, filter miss

	// Modify: same gating as add.
	if err := s.Put(NewEntry(inScope).Add("objectclass", "computer").Add("gen", "2")); err != nil {
		t.Fatal(err)
	}
	if ev := next(); ev.Type != ChangeModify || ev.Entry.First("gen") != "2" {
		t.Fatalf("want ChangeModify gen=2, got type %d gen %q", ev.Type, ev.Entry.First("gen"))
	}

	// Delete: filter is bypassed — replace the entry so it no longer
	// matches, then delete; the event must still arrive, carrying the
	// pre-delete state.
	if err := s.Put(NewEntry(inScope).Add("objectclass", "retired").Add("gen", "3")); err != nil {
		t.Fatal(err)
	}
	assertNone() // modify filtered out: entry no longer matches
	if !s.Remove(inScope) {
		t.Fatal("remove failed")
	}
	ev := next()
	if ev.Type != ChangeDelete {
		t.Fatalf("want ChangeDelete, got %d", ev.Type)
	}
	if ev.Entry.First("gen") != "3" || ev.Entry.First("objectclass") != "retired" {
		t.Fatalf("delete must carry the pre-delete snapshot, got gen %q class %q",
			ev.Entry.First("gen"), ev.Entry.First("objectclass"))
	}

	// The snapshot stays stable even after the DN is reused.
	if err := s.Put(NewEntry(inScope).Add("objectclass", "computer").Add("gen", "4")); err != nil {
		t.Fatal(err)
	}
	if ev.Entry.First("gen") != "3" {
		t.Fatalf("delivered snapshot mutated by re-Put: gen %q", ev.Entry.First("gen"))
	}
	if ev2 := next(); ev2.Type != ChangeAdd || ev2.Entry.First("gen") != "4" {
		t.Fatalf("want ChangeAdd gen=4 after reuse, got type %d gen %q", ev2.Type, ev2.Entry.First("gen"))
	}

	// Out-of-scope delete: suppressed like any other out-of-scope change.
	s.Remove(outScope)
	assertNone()

	// RemoveSubtree delivers a delete per doomed entry, parents first.
	if err := s.Put(NewEntry(MustParseDN("doc=d, hn=a, ou=watched, o=g")).Add("objectclass", "document")); err != nil {
		t.Fatal(err)
	}
	assertNone() // document misses the filter
	if n := s.RemoveSubtree(MustParseDN("ou=watched, o=g")); n != 3 {
		t.Fatalf("RemoveSubtree removed %d entries, want 3", n)
	}
	// ou=watched itself holds no entry; deletes arrive for p=x, hn=a,
	// doc=d — all of them, filter notwithstanding, in (depth, DN) order.
	wantDNs := []string{"hn=a, ou=watched, o=g", "p=x, ou=watched, o=g", "doc=d, hn=a, ou=watched, o=g"}
	for _, want := range wantDNs {
		ev := next()
		if ev.Type != ChangeDelete || !ev.Entry.DN.Equal(MustParseDN(want)) {
			t.Fatalf("want delete of %q, got type %d %q", want, ev.Type, ev.Entry.DN)
		}
	}
	assertNone()
}

// TestStoreConcurrentIndexedAccess hammers every mutation path against
// concurrent indexed reads and a live persistent-search subscriber; run
// under -race it proves the index maintenance holds the locking contract.
func TestStoreConcurrentIndexedAccess(t *testing.T) {
	s := NewStore()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events := s.Subscribe(ctx, MustParseDN("o=grid"), ScopeWholeSubtree,
		MustParseFilter("(objectclass=computer)"))
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for ev := range events {
			_ = ev.Entry.First("hn") // touch the snapshot
		}
	}()

	const workers, iters = 4, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			filter := MustParseFilter("(objectclass=computer)")
			for i := 0; i < iters; i++ {
				n := rng.Intn(40)
				dn := MustParseDN(fmt.Sprintf("hn=h%d, ou=g%d, o=grid", n, n%3))
				switch rng.Intn(5) {
				case 0:
					s.Remove(dn)
				case 1:
					s.RemoveSubtree(MustParseDN(fmt.Sprintf("ou=g%d, o=grid", n%3)))
				case 2:
					got := s.Find(MustParseDN("o=grid"), ScopeWholeSubtree, filter)
					for _, e := range got {
						_ = e.First("hn")
					}
				case 3:
					s.FindLimit(MustParseDN("o=grid"), ScopeWholeSubtree, nil, 5)
				default:
					e := NewEntry(dn).Add("objectclass", "computer").
						Add("hn", fmt.Sprintf("h%d", n)).Add("load", fmt.Sprintf("%d", i))
					if err := s.Put(e); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	cancel()
	<-drained

	// The index must still be coherent after the storm.
	got := s.Find(MustParseDN("o=grid"), ScopeWholeSubtree, MustParseFilter("(objectclass=computer)"))
	want := s.findScan(MustParseDN("o=grid"), ScopeWholeSubtree, MustParseFilter("(objectclass=computer)"))
	if len(got) != len(want) {
		t.Fatalf("post-storm index mismatch: indexed %d, scan %d", len(got), len(want))
	}
}
