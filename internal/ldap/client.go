package ldap

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"mds2/internal/ber"
	"mds2/internal/obs"
	"mds2/internal/softstate"
)

// Client is an LDAP connection multiplexer: concurrent operations share one
// connection, routed back to callers by message ID. It is the GRIP access
// path used by aggregate directories, brokers, and end users alike.
type Client struct {
	conn net.Conn
	w    *connWriter

	mu            sync.Mutex
	nextID        int64
	pending       map[int64]*pendingOp
	err           error // terminal connection error
	closed        bool
	loggedUnknown bool

	// UnknownResponses counts responses whose message ID matched no pending
	// operation — a protocol desync, or a reply that arrived after its
	// caller timed out or abandoned. The first occurrence is also logged to
	// ErrorLog, so desyncs are observable instead of silently dropped.
	// Owners aggregating many clients (the GIIS pool) surface it through an
	// obs.Registry via a CounterFunc rather than a bespoke field.
	UnknownResponses obs.Counter
	// ErrorLog receives client-side protocol warnings; nil discards them.
	ErrorLog *log.Logger

	// Timeout bounds each synchronous round trip (zero means no limit).
	Timeout time.Duration
	// Clock supplies the timeout timer so FakeClock tests drive operation
	// deadlines deterministically; nil means the wall clock.
	Clock softstate.Clock
}

// pendingOp routes responses for one in-flight operation. gone is closed
// when the caller unregisters (completion, timeout, abandon) or the
// connection fails: the read loop selects on it so a response for a
// departed caller can never wedge on a full channel, and waiters use it as
// the connection-failure signal.
type pendingOp struct {
	ch   chan *Message
	gone chan struct{}
}

// ErrClientClosed reports use of a closed client.
var ErrClientClosed = errors.New("ldap: client closed")

// Dial connects to a TCP LDAP server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (TCP or simulated pipe).
func NewClient(conn net.Conn) *Client {
	c := &Client{conn: conn, w: newConnWriter(conn, nil, nil), nextID: 1,
		pending: map[int64]*pendingOp{},
		Timeout: 30 * time.Second, Clock: softstate.RealClock{}}
	go c.readLoop()
	return c
}

func (c *Client) readLoop() {
	r := bufio.NewReaderSize(c.conn, 4<<10)
	for {
		pkt, err := ber.ReadPacket(r)
		if err != nil {
			c.fail(err)
			return
		}
		msg, err := DecodeMessage(pkt)
		if err != nil {
			c.fail(err)
			return
		}
		c.mu.Lock()
		op := c.pending[msg.ID]
		c.mu.Unlock()
		if op == nil {
			c.noteUnknown(msg.ID)
			continue
		}
		select {
		case op.ch <- msg:
		case <-op.gone:
			// The caller left between the map lookup and the send.
			c.noteUnknown(msg.ID)
		}
	}
}

// noteUnknown records a response that had no pending operation to route to.
func (c *Client) noteUnknown(id int64) {
	c.UnknownResponses.Inc()
	c.mu.Lock()
	logged := c.loggedUnknown
	c.loggedUnknown = true
	c.mu.Unlock()
	if !logged && c.ErrorLog != nil {
		c.ErrorLog.Printf("ldap: client: dropping response for unknown message ID %d (further drops counted, not logged)", id)
	}
}

func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	ops := make([]*pendingOp, 0, len(c.pending))
	for id, op := range c.pending {
		ops = append(ops, op)
		delete(c.pending, id)
	}
	c.mu.Unlock()
	for _, op := range ops {
		close(op.gone)
	}
}

// Close unbinds and tears down the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	// Best-effort polite unbind; the connection close is authoritative.
	c.write(&Message{ID: c.allocID(), Op: &UnbindRequest{}})
	c.w.close()
	err := c.conn.Close()
	c.fail(ErrClientClosed)
	return err
}

func (c *Client) allocID() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.nextID
	c.nextID++
	return id
}

func (c *Client) register(id int64, buffer int) (*pendingOp, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return nil, c.err
	}
	if c.closed {
		return nil, ErrClientClosed
	}
	op := &pendingOp{ch: make(chan *Message, buffer), gone: make(chan struct{})}
	c.pending[id] = op
	return op, nil
}

// unregister removes the pending entry (so timed-out and abandoned calls
// don't accumulate routing state for the life of the connection) and closes
// gone so the read loop stops delivering to it.
func (c *Client) unregister(id int64) {
	c.mu.Lock()
	op, ok := c.pending[id]
	if ok {
		delete(c.pending, id)
	}
	c.mu.Unlock()
	if ok {
		close(op.gone)
	}
}

// pendingCount reports in-flight routing entries (test hook for the
// timeout-leak regression).
func (c *Client) pendingCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

func (c *Client) write(m *Message) error {
	// Client sends are requests: always worth a flush, since the round trip
	// blocks on the server seeing them.
	return c.w.enqueue(m, true)
}

// roundTrip sends op and waits for a single response message.
func (c *Client) roundTrip(op Op, controls ...Control) (*Message, error) {
	id := c.allocID()
	pop, err := c.register(id, 1)
	if err != nil {
		return nil, err
	}
	defer c.unregister(id)
	if err := c.write(&Message{ID: id, Op: op, Controls: controls}); err != nil {
		return nil, err
	}
	return c.await(pop)
}

func (c *Client) await(op *pendingOp) (*Message, error) {
	var timeout <-chan time.Time
	if c.Timeout > 0 {
		clock := c.Clock
		if clock == nil {
			clock = softstate.RealClock{}
		}
		timeout = clock.After(c.Timeout)
	}
	select {
	case msg := <-op.ch:
		return msg, nil
	case <-op.gone:
		return nil, c.connErr()
	case <-timeout:
		return nil, fmt.Errorf("ldap: operation timed out after %v", c.Timeout)
	}
}

func (c *Client) connErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	return ErrClientClosed
}

// Bind performs a simple bind ("" / "" for anonymous).
func (c *Client) Bind(name, password string) error {
	msg, err := c.roundTrip(&BindRequest{Version: 3, Name: name, Password: password})
	if err != nil {
		return err
	}
	resp, ok := msg.Op.(*BindResponse)
	if !ok {
		return fmt.Errorf("ldap: unexpected bind reply %T", msg.Op)
	}
	return resp.Err()
}

// BindSASL performs one SASL bind step and returns the server's response,
// which may be in-progress (ResultSaslBindInProgress) with challenge data.
// Callers loop until success or failure; the GSI mechanism uses two steps.
func (c *Client) BindSASL(name, mech string, creds []byte) (*BindResponse, error) {
	msg, err := c.roundTrip(&BindRequest{Version: 3, Name: name, SASLMech: mech, SASLCreds: creds})
	if err != nil {
		return nil, err
	}
	resp, ok := msg.Op.(*BindResponse)
	if !ok {
		return nil, fmt.Errorf("ldap: unexpected bind reply %T", msg.Op)
	}
	return resp, nil
}

// SearchResult aggregates a completed search.
type SearchResult struct {
	Entries   []*Entry
	Referrals []string
	Result    Result
	// DoneControls are the controls attached to the final SearchResultDone
	// message (e.g. the trace-spans control a traced child hop reports).
	DoneControls []Control
}

// Search runs a search to completion and collects all result entries.
// The client Timeout bounds the whole operation (persistent searches use
// SearchFunc with a caller-managed context instead).
func (c *Client) Search(req *SearchRequest) (*SearchResult, error) {
	return c.SearchWith(req, nil)
}

// SearchWith is Search with request controls attached — the chained-search
// path a GIIS uses to propagate trace identity to child hops.
func (c *Client) SearchWith(req *SearchRequest, controls []Control) (*SearchResult, error) {
	ctx := context.Background()
	if c.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.Timeout)
		defer cancel()
	}
	res := &SearchResult{}
	err := c.searchFunc(ctx, req, controls, func(e *Entry, _ []Control) error {
		res.Entries = append(res.Entries, e)
		return nil
	}, func(urls []string) error {
		res.Referrals = append(res.Referrals, urls...)
		return nil
	}, &res.Result, &res.DoneControls)
	if err != nil {
		return nil, err
	}
	if err := res.Result.Err(); err != nil {
		return res, err
	}
	return res, nil
}

// SearchFunc streams search results through callbacks until the search
// completes, ctx is cancelled (which abandons the operation server-side),
// or a callback returns an error. refFn may be nil to ignore referrals;
// done, when non-nil, receives the final LDAPResult.
//
// With a persistent-search control attached, the server never sends a
// final done message and SearchFunc runs until ctx is cancelled: this is
// GRIP subscription mode.
func (c *Client) SearchFunc(ctx context.Context, req *SearchRequest, controls []Control,
	entryFn func(*Entry, []Control) error, refFn func([]string) error, done *Result) error {
	return c.searchFunc(ctx, req, controls, entryFn, refFn, done, nil)
}

// searchFunc additionally captures the final message's controls when
// doneControls is non-nil.
func (c *Client) searchFunc(ctx context.Context, req *SearchRequest, controls []Control,
	entryFn func(*Entry, []Control) error, refFn func([]string) error,
	done *Result, doneControls *[]Control) error {

	id := c.allocID()
	pop, err := c.register(id, 64)
	if err != nil {
		return err
	}
	defer c.unregister(id)
	if err := c.write(&Message{ID: id, Op: req, Controls: controls}); err != nil {
		return err
	}
	abandon := func() {
		c.write(&Message{ID: c.allocID(), Op: &AbandonRequest{IDToAbandon: id}})
	}
	for {
		select {
		case <-ctx.Done():
			abandon()
			return ctx.Err()
		case <-pop.gone:
			return c.connErr()
		case msg := <-pop.ch:
			switch op := msg.Op.(type) {
			case *SearchResultEntry:
				if err := entryFn(op.Entry, msg.Controls); err != nil {
					abandon()
					return err
				}
			case *SearchResultReference:
				if refFn != nil {
					if err := refFn(op.URLs); err != nil {
						abandon()
						return err
					}
				}
			case *SearchResultDone:
				if done != nil {
					*done = op.Result
				}
				if doneControls != nil {
					*doneControls = msg.Controls
				}
				return nil
			default:
				return fmt.Errorf("ldap: unexpected search reply %T", msg.Op)
			}
		}
	}
}

// Add inserts an entry.
func (c *Client) Add(e *Entry) error {
	msg, err := c.roundTrip(&AddRequest{Entry: e})
	if err != nil {
		return err
	}
	resp, ok := msg.Op.(*AddResponse)
	if !ok {
		return fmt.Errorf("ldap: unexpected add reply %T", msg.Op)
	}
	return resp.Err()
}

// Delete removes an entry by DN.
func (c *Client) Delete(dn string) error {
	msg, err := c.roundTrip(&DelRequest{DN: dn})
	if err != nil {
		return err
	}
	resp, ok := msg.Op.(*DelResponse)
	if !ok {
		return fmt.Errorf("ldap: unexpected delete reply %T", msg.Op)
	}
	return resp.Err()
}

// Modify applies changes to an entry.
func (c *Client) Modify(dn string, changes []ModifyChange) error {
	msg, err := c.roundTrip(&ModifyRequest{DN: dn, Changes: changes})
	if err != nil {
		return err
	}
	resp, ok := msg.Op.(*ModifyResponse)
	if !ok {
		return fmt.Errorf("ldap: unexpected modify reply %T", msg.Op)
	}
	return resp.Err()
}

// Extended invokes an extended operation.
func (c *Client) Extended(oid string, value []byte) (*ExtendedResponse, error) {
	msg, err := c.roundTrip(&ExtendedRequest{OID: oid, Value: value})
	if err != nil {
		return nil, err
	}
	resp, ok := msg.Op.(*ExtendedResponse)
	if !ok {
		return nil, fmt.Errorf("ldap: unexpected extended reply %T", msg.Op)
	}
	if err := resp.Err(); err != nil {
		return resp, err
	}
	return resp, nil
}
