package ldap

import (
	"reflect"
	"testing"
)

func roundTripMessage(t *testing.T, m *Message) *Message {
	t.Helper()
	back, err := ParseMessageBytes(m.Encode())
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	return back
}

func TestBindRequestRoundTrip(t *testing.T) {
	m := &Message{ID: 1, Op: &BindRequest{Version: 3, Name: "cn=admin", Password: "secret"}}
	back := roundTripMessage(t, m)
	op := back.Op.(*BindRequest)
	if back.ID != 1 || op.Version != 3 || op.Name != "cn=admin" || op.Password != "secret" {
		t.Errorf("decoded %+v", op)
	}
}

func TestBindSASLRoundTrip(t *testing.T) {
	m := &Message{ID: 2, Op: &BindRequest{Version: 3, Name: "cn=gsi", SASLMech: "GSI", SASLCreds: []byte{1, 2, 3}}}
	op := roundTripMessage(t, m).Op.(*BindRequest)
	if op.SASLMech != "GSI" || !reflect.DeepEqual(op.SASLCreds, []byte{1, 2, 3}) {
		t.Errorf("decoded %+v", op)
	}
}

func TestBindResponseRoundTrip(t *testing.T) {
	m := &Message{ID: 2, Op: &BindResponse{
		Result:      Result{Code: ResultInvalidCredentials, Message: "bad password"},
		ServerCreds: []byte("challenge"),
	}}
	op := roundTripMessage(t, m).Op.(*BindResponse)
	if op.Code != ResultInvalidCredentials || op.Message != "bad password" || string(op.ServerCreds) != "challenge" {
		t.Errorf("decoded %+v", op)
	}
}

func TestSearchRequestRoundTrip(t *testing.T) {
	m := &Message{ID: 7, Op: &SearchRequest{
		BaseDN:     "o=grid",
		Scope:      ScopeWholeSubtree,
		SizeLimit:  100,
		TimeLimit:  30,
		TypesOnly:  true,
		Filter:     MustParseFilter("(&(objectclass=computer)(freecpus>=4))"),
		Attributes: []string{"hn", "load5"},
	}}
	op := roundTripMessage(t, m).Op.(*SearchRequest)
	if op.BaseDN != "o=grid" || op.Scope != ScopeWholeSubtree || op.SizeLimit != 100 ||
		op.TimeLimit != 30 || !op.TypesOnly {
		t.Errorf("decoded %+v", op)
	}
	if op.Filter.String() != "(&(objectclass=computer)(freecpus>=4))" {
		t.Errorf("filter = %s", op.Filter)
	}
	if !reflect.DeepEqual(op.Attributes, []string{"hn", "load5"}) {
		t.Errorf("attrs = %v", op.Attributes)
	}
}

func TestSearchRequestNilFilterDefaults(t *testing.T) {
	m := &Message{ID: 1, Op: &SearchRequest{BaseDN: "o=g"}}
	op := roundTripMessage(t, m).Op.(*SearchRequest)
	if op.Filter.String() != "(objectclass=*)" {
		t.Errorf("default filter = %s", op.Filter)
	}
}

func TestSearchResultEntryRoundTrip(t *testing.T) {
	e := NewEntry(MustParseDN("hn=hostX, o=grid")).
		Add("objectclass", "computer").
		Add("load5", "3.2")
	m := &Message{ID: 7, Op: &SearchResultEntry{Entry: e}}
	op := roundTripMessage(t, m).Op.(*SearchResultEntry)
	if !op.Entry.DN.Equal(e.DN) {
		t.Errorf("dn = %q", op.Entry.DN)
	}
	if op.Entry.First("load5") != "3.2" || !op.Entry.IsA("computer") {
		t.Errorf("entry = %s", op.Entry)
	}
}

func TestSearchDoneWithReferralsRoundTrip(t *testing.T) {
	m := &Message{ID: 3, Op: &SearchResultDone{Result: Result{
		Code:      ResultReferral,
		Referrals: []string{"ldap://a:389/o=x", "ldap://b:389/o=y"},
	}}}
	op := roundTripMessage(t, m).Op.(*SearchResultDone)
	if op.Code != ResultReferral || len(op.Referrals) != 2 || op.Referrals[1] != "ldap://b:389/o=y" {
		t.Errorf("decoded %+v", op)
	}
}

func TestSearchReferenceRoundTrip(t *testing.T) {
	m := &Message{ID: 4, Op: &SearchResultReference{URLs: []string{"ldap://gris1:389/hn=h"}}}
	op := roundTripMessage(t, m).Op.(*SearchResultReference)
	if len(op.URLs) != 1 || op.URLs[0] != "ldap://gris1:389/hn=h" {
		t.Errorf("decoded %+v", op)
	}
}

func TestAddDeleteModifyRoundTrip(t *testing.T) {
	e := NewEntry(MustParseDN("svc=giis, o=grid")).Add("objectclass", "mdsservice").Add("url", "ldap://x")
	add := roundTripMessage(t, &Message{ID: 5, Op: &AddRequest{Entry: e}}).Op.(*AddRequest)
	if !add.Entry.DN.Equal(e.DN) || add.Entry.First("url") != "ldap://x" {
		t.Errorf("add decoded %s", add.Entry)
	}

	del := roundTripMessage(t, &Message{ID: 6, Op: &DelRequest{DN: "svc=giis, o=grid"}}).Op.(*DelRequest)
	if del.DN != "svc=giis, o=grid" {
		t.Errorf("del decoded %+v", del)
	}

	mod := roundTripMessage(t, &Message{ID: 7, Op: &ModifyRequest{
		DN: "svc=giis, o=grid",
		Changes: []ModifyChange{
			{Op: ModReplace, Attr: Attribute{Name: "url", Values: []string{"ldap://y"}}},
			{Op: ModDelete, Attr: Attribute{Name: "old"}},
		},
	}}).Op.(*ModifyRequest)
	if len(mod.Changes) != 2 || mod.Changes[0].Op != ModReplace || mod.Changes[0].Attr.Values[0] != "ldap://y" {
		t.Errorf("mod decoded %+v", mod)
	}
	if mod.Changes[1].Op != ModDelete || len(mod.Changes[1].Attr.Values) != 0 {
		t.Errorf("mod change 2 %+v", mod.Changes[1])
	}
}

func TestAbandonExtendedUnbindRoundTrip(t *testing.T) {
	ab := roundTripMessage(t, &Message{ID: 9, Op: &AbandonRequest{IDToAbandon: 7}}).Op.(*AbandonRequest)
	if ab.IDToAbandon != 7 {
		t.Errorf("abandon %+v", ab)
	}
	ex := roundTripMessage(t, &Message{ID: 10, Op: &ExtendedRequest{OID: "1.2.3.4", Value: []byte("v")}}).Op.(*ExtendedRequest)
	if ex.OID != "1.2.3.4" || string(ex.Value) != "v" {
		t.Errorf("extended %+v", ex)
	}
	exr := roundTripMessage(t, &Message{ID: 11, Op: &ExtendedResponse{
		Result: Result{Code: ResultSuccess}, OID: "1.2.3.4", Value: []byte("r"),
	}}).Op.(*ExtendedResponse)
	if exr.OID != "1.2.3.4" || string(exr.Value) != "r" {
		t.Errorf("extended response %+v", exr)
	}
	if _, ok := roundTripMessage(t, &Message{ID: 12, Op: &UnbindRequest{}}).Op.(*UnbindRequest); !ok {
		t.Error("unbind type lost")
	}
}

func TestControlsRoundTrip(t *testing.T) {
	ps := NewPersistentSearchControl(PersistentSearch{ChangeTypes: ChangeAll, ChangesOnly: true, ReturnECs: true})
	m := &Message{ID: 13, Op: &SearchRequest{BaseDN: "o=g"}, Controls: []Control{ps}}
	back := roundTripMessage(t, m)
	if len(back.Controls) != 1 {
		t.Fatalf("controls = %d", len(back.Controls))
	}
	got, err := ParsePersistentSearch(back.Controls[0])
	if err != nil {
		t.Fatal(err)
	}
	if got.ChangeTypes != ChangeAll || !got.ChangesOnly || !got.ReturnECs {
		t.Errorf("psearch = %+v", got)
	}
	if !back.Controls[0].Criticality {
		t.Error("criticality lost")
	}
}

func TestEntryChangeControlRoundTrip(t *testing.T) {
	c := NewEntryChangeControl(ChangeDelete)
	typ, err := ParseEntryChange(c)
	if err != nil || typ != ChangeDelete {
		t.Errorf("entry change = %d, %v", typ, err)
	}
	if _, err := ParseEntryChange(Control{OID: "wrong"}); err == nil {
		t.Error("wrong OID should fail")
	}
}

func TestFindControl(t *testing.T) {
	cs := []Control{{OID: "a"}, {OID: "b", Value: []byte("x")}}
	if c, ok := FindControl(cs, "b"); !ok || string(c.Value) != "x" {
		t.Error("FindControl b failed")
	}
	if _, ok := FindControl(cs, "c"); ok {
		t.Error("FindControl c should fail")
	}
}

func TestResultErrHelpers(t *testing.T) {
	if (Result{Code: ResultSuccess}).Err() != nil {
		t.Error("success should be nil error")
	}
	err := (Result{Code: ResultNoSuchObject, Message: "gone"}).Err()
	if err == nil || !IsCode(err, ResultNoSuchObject) {
		t.Errorf("err = %v", err)
	}
	if IsCode(err, ResultSuccess) {
		t.Error("IsCode mismatch")
	}
	if IsCode(nil, ResultSuccess) {
		t.Error("nil error has no code")
	}
}

func TestDecodeMessageErrors(t *testing.T) {
	for _, bad := range [][]byte{
		{0x04, 0x00},                   // not a sequence
		{0x30, 0x03, 0x02, 0x01, 0x01}, // missing op
	} {
		if _, err := ParseMessageBytes(bad); err == nil {
			t.Errorf("% x: expected error", bad)
		}
	}
}

func BenchmarkMessageEncodeSearch(b *testing.B) {
	m := &Message{ID: 7, Op: &SearchRequest{
		BaseDN: "o=grid", Scope: ScopeWholeSubtree,
		Filter:     MustParseFilter("(&(objectclass=computer)(freecpus>=4))"),
		Attributes: []string{"hn", "load5"},
	}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Encode()
	}
}

func BenchmarkMessageDecodeSearch(b *testing.B) {
	enc := (&Message{ID: 7, Op: &SearchRequest{
		BaseDN: "o=grid", Scope: ScopeWholeSubtree,
		Filter:     MustParseFilter("(&(objectclass=computer)(freecpus>=4))"),
		Attributes: []string{"hn", "load5"},
	}}).Encode()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseMessageBytes(enc); err != nil {
			b.Fatal(err)
		}
	}
}
