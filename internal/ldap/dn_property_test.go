package ldap

import (
	"math/rand"
	"testing"
)

// randDN builds a random DN over a small alphabet.
func randDN(r *rand.Rand, depth int) DN {
	attrs := []string{"hn", "o", "ou", "perf", "queue"}
	var dn DN
	for i := 0; i < depth; i++ {
		dn = append(dn, RDN{{
			Attr:  attrs[r.Intn(len(attrs))],
			Value: string(rune('a' + r.Intn(26))),
		}})
	}
	return dn
}

// TestUnderRelativeToInverse: for any relative DN r and ancestor a,
// (r.Under(a)).RelativeTo(a) == r — the namespace grafting used by GIIS
// views must be invertible.
func TestUnderRelativeToInverse(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		rel := randDN(r, r.Intn(4))
		anc := randDN(r, 1+r.Intn(3))
		grafted := rel.Under(anc)
		back, ok := grafted.RelativeTo(anc)
		if !ok {
			t.Fatalf("RelativeTo failed: rel=%q anc=%q grafted=%q", rel, anc, grafted)
		}
		if back.Normalize() != rel.Normalize() {
			t.Fatalf("inverse violated: rel=%q anc=%q back=%q", rel, anc, back)
		}
	}
}

// TestScopeContainment: base scope ⊂ one-level ∪ base ⊂ subtree, for random
// DNs — the region semantics the GRIS/GIIS scope pruning relies on.
func TestScopeContainment(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 2000; i++ {
		d := randDN(r, r.Intn(5))
		base := randDN(r, r.Intn(4))
		inBase := d.WithinScope(base, ScopeBaseObject)
		inOne := d.WithinScope(base, ScopeSingleLevel)
		inSub := d.WithinScope(base, ScopeWholeSubtree)
		if inBase && !inSub {
			t.Fatalf("base ⊄ subtree: d=%q base=%q", d, base)
		}
		if inOne && !inSub {
			t.Fatalf("one-level ⊄ subtree: d=%q base=%q", d, base)
		}
		if inBase && inOne {
			t.Fatalf("base and one-level overlap: d=%q base=%q", d, base)
		}
		// Subtree membership implies equality or strict descent.
		if inSub && !d.Equal(base) && !d.IsDescendantOf(base) {
			t.Fatalf("subtree without descent: d=%q base=%q", d, base)
		}
	}
}

// TestParentDepthInvariant: Parent always reduces depth by one until root.
func TestParentDepthInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		d := randDN(r, 1+r.Intn(6))
		for !d.IsZero() {
			p := d.Parent()
			if p.Depth() != d.Depth()-1 {
				t.Fatalf("parent depth: %q -> %q", d, p)
			}
			if !d.IsDescendantOf(p) {
				t.Fatalf("child not descendant of parent: %q / %q", d, p)
			}
			d = p
		}
	}
}

// TestNormalizeEqualConsistency: Equal agrees with Normalize equality.
func TestNormalizeEqualConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 1000; i++ {
		a := randDN(r, r.Intn(4))
		b := randDN(r, r.Intn(4))
		if a.Equal(b) != (a.Normalize() == b.Normalize()) {
			t.Fatalf("Equal/Normalize disagree: %q vs %q", a, b)
		}
	}
}
