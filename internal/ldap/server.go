package ldap

import (
	"bufio"
	"context"
	"errors"
	"log"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mds2/internal/ber"
	"mds2/internal/obs"
	"mds2/internal/softstate"
)

// SASL bind-in-progress result code (RFC 4511 §4.2.2).
const ResultSaslBindInProgress ResultCode = 14

// ConnState carries per-connection server-side state. A Handler's Bind
// implementation records the authenticated identity here; later operations
// consult it for access control decisions.
type ConnState struct {
	RemoteAddr string
	mu         sync.Mutex
	boundDN    string
	identity   any
}

// SetIdentity records the authenticated peer (bound DN plus an opaque
// credential object such as a *gsi.Credential).
func (c *ConnState) SetIdentity(dn string, identity any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.boundDN, c.identity = dn, identity
}

// BoundDN returns the DN established by the last successful bind
// ("" while anonymous).
func (c *ConnState) BoundDN() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.boundDN
}

// Identity returns the opaque credential recorded at bind time.
func (c *ConnState) Identity() any {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.identity
}

// SearchWriter streams search results back to the client. Implementations
// are safe for concurrent use; a persistent search holds one for its
// lifetime and feeds it from change notifications.
type SearchWriter interface {
	// SendEntry transmits one result entry with optional per-entry controls.
	SendEntry(e *Entry, controls ...Control) error
	// SendReferral transmits a continuation reference (LDAP URLs).
	SendReferral(urls ...string) error
}

// Request bundles the decoded operation with its envelope controls and a
// context that is cancelled when the operation is abandoned or the
// connection closes.
type Request struct {
	Ctx      context.Context
	State    *ConnState
	Controls []Control

	// Span is the server-side span for this operation; handlers hang
	// sub-spans (cache lookups, chain hops) off it. Nil when the request is
	// untraced — all Span methods are no-ops on nil.
	Span *obs.Span
	// TraceID and TraceDepth identify the active trace so handlers that
	// chain to child hops (GIIS) can propagate it via the trace control.
	// TraceID is empty when the request is untraced.
	TraceID    string
	TraceDepth int
}

// Handler implements server-side LDAP semantics. GRIS and GIIS are both
// Handlers plugged into the same protocol engine, mirroring how MDS-2
// implements both as OpenLDAP backends behind one front end (§10.4).
type Handler interface {
	Bind(req *Request, op *BindRequest) *BindResponse
	Search(req *Request, op *SearchRequest, w SearchWriter) Result
	Add(req *Request, op *AddRequest) Result
	Delete(req *Request, op *DelRequest) Result
	Modify(req *Request, op *ModifyRequest) Result
	Extended(req *Request, op *ExtendedRequest) *ExtendedResponse
}

// BaseHandler provides refuse-everything defaults so concrete handlers only
// implement the operations they support.
type BaseHandler struct{}

// Bind accepts anonymous binds only.
func (BaseHandler) Bind(_ *Request, op *BindRequest) *BindResponse {
	if op.Name == "" && op.Password == "" && op.SASLMech == "" {
		return &BindResponse{Result: Result{Code: ResultSuccess}}
	}
	return &BindResponse{Result: Result{Code: ResultAuthMethodNotSupported,
		Message: "only anonymous bind supported"}}
}

// Search refuses.
func (BaseHandler) Search(*Request, *SearchRequest, SearchWriter) Result {
	return Result{Code: ResultUnwillingToPerform, Message: "search not supported"}
}

// Add refuses.
func (BaseHandler) Add(*Request, *AddRequest) Result {
	return Result{Code: ResultUnwillingToPerform, Message: "add not supported"}
}

// Delete refuses.
func (BaseHandler) Delete(*Request, *DelRequest) Result {
	return Result{Code: ResultUnwillingToPerform, Message: "delete not supported"}
}

// Modify refuses.
func (BaseHandler) Modify(*Request, *ModifyRequest) Result {
	return Result{Code: ResultUnwillingToPerform, Message: "modify not supported"}
}

// Extended refuses.
func (BaseHandler) Extended(_ *Request, op *ExtendedRequest) *ExtendedResponse {
	return &ExtendedResponse{Result: Result{Code: ResultProtocolError,
		Message: "unsupported extended operation " + op.OID}}
}

// Server is the LDAP protocol engine: it owns connection handling, message
// framing, operation dispatch, and abandon bookkeeping, and delegates
// semantics to a Handler — the same separation the paper credits to the
// OpenLDAP front-end/backend split (§10.1).
type Server struct {
	Handler Handler
	// ErrorLog receives connection-level protocol errors; nil discards them.
	ErrorLog *log.Logger
	// Clock drives per-connection idle-flush ticks (see connWriter); nil
	// means the wall clock. Injectable so FakeClock tests cover the
	// coalescing path deterministically.
	Clock softstate.Clock
	// Obs, when non-nil, receives protocol-engine metrics (in-flight ops,
	// per-op latency, write batch sizes). Set before serving; nil disables
	// collection at zero cost (instruments resolve to nil no-op recorders).
	Obs *obs.Registry
	// Tracer, when non-nil, traces every dispatched operation. Independent
	// of Tracer, a request carrying the trace-request control is always
	// traced and its span tree returned on the final response, so a parent
	// hop (or gridsearch -trace) gets spans from an otherwise untraced
	// server.
	Tracer *obs.Tracer
	// Overload configures admission control and load shedding; the zero
	// value keeps the historical unbounded behavior. Set before serving.
	Overload OverloadConfig

	instOnce sync.Once
	inst     serverInstruments

	admOnce sync.Once
	adm     *admission // nil when Overload admission is disabled

	mu       sync.Mutex
	listener net.Listener
	conns    map[*serverConn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer returns a server delegating to h.
func NewServer(h Handler) *Server {
	return &Server{Handler: h, conns: map[*serverConn]struct{}{}}
}

// ErrServerClosed is returned by Serve after Close.
var ErrServerClosed = errors.New("ldap: server closed")

// Serve accepts connections on l until Close is called. With
// Overload.MaxConns set, the accept loop pauses at the connection cap —
// backpressure surfaces to new clients as TCP connect latency instead of
// an accepted-but-starved connection.
func (s *Server) Serve(l net.Listener) error {
	inst := s.instruments() // materialize registry series before the first connection
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.listener = l
	s.mu.Unlock()
	var connSem chan struct{}
	if s.Overload.MaxConns > 0 {
		connSem = make(chan struct{}, s.Overload.MaxConns)
	}
	for {
		if connSem != nil {
			select {
			case connSem <- struct{}{}:
			default:
				// At the cap: wait for a connection to finish. Close tears
				// down every live connection, so this cannot deadlock a
				// shutdown.
				inst.backpressure.Inc()
				connSem <- struct{}{}
			}
		}
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return err
		}
		sc := s.newConn(conn)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return ErrServerClosed
		}
		s.conns[sc] = struct{}{}
		// Add while still holding mu: Close sets closed and calls wg.Wait
		// under the same lock discipline, so Add can never race the Wait.
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			sc.serve()
			s.mu.Lock()
			delete(s.conns, sc)
			s.mu.Unlock()
			if connSem != nil {
				<-connSem
			}
		}()
	}
}

// ServeConn handles a single pre-established connection (used with
// net.Pipe-based simulated transports) and returns when it closes.
func (s *Server) ServeConn(conn net.Conn) {
	sc := s.newConn(conn)
	s.mu.Lock()
	s.conns[sc] = struct{}{}
	s.mu.Unlock()
	sc.serve()
	s.mu.Lock()
	delete(s.conns, sc)
	s.mu.Unlock()
}

// Close stops accepting and tears down all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	l := s.listener
	for sc := range s.conns {
		sc.conn.Close()
	}
	s.mu.Unlock()
	s.admission().close() // fail queued ops so their goroutines drain
	var err error
	if l != nil {
		err = l.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) logf(format string, args ...any) {
	if s.ErrorLog != nil {
		s.ErrorLog.Printf(format, args...)
	}
}

// serverInstruments are the protocol engine's registry-backed instruments,
// resolved once per server. With no Obs registry every pointer is nil — a
// no-op recorder — and enabled gates the clock reads, so the disabled path
// adds one branch and zero allocations.
type serverInstruments struct {
	enabled  bool
	inflight *obs.Gauge
	opDur    [6]*obs.Histogram // indexed by opKind
	batch    *obs.Histogram

	// Overload-control series (all no-ops without a registry).
	queueDepth      *obs.Gauge     // ops waiting for a worker slot
	queueWait       *obs.Histogram // measured admission-queue wait
	shedBusy        *obs.Counter   // shed: projected wait over budget
	shedUnavailable *obs.Counter   // shed: admission queue full
	throttled       *obs.Counter   // shed: per-client rate limit
	backpressure    *obs.Counter   // accept loop stalled on MaxConns
}

type opKind int

const (
	opBind opKind = iota
	opSearch
	opAdd
	opDelete
	opModify
	opExtended
)

var opKindNames = [6]string{"bind", "search", "add", "delete", "modify", "extended"}

func (s *Server) instruments() *serverInstruments {
	s.instOnce.Do(func() {
		r := s.Obs // nil registry hands out nil (no-op) instruments
		s.inst.enabled = r != nil
		s.inst.inflight = r.Gauge("ldap_inflight_ops")
		for k, name := range opKindNames {
			s.inst.opDur[k] = r.Histogram("ldap_" + name + "_duration_ns")
		}
		s.inst.batch = r.Histogram("ldap_write_batch_bytes")
		s.inst.queueDepth = r.Gauge("ldap_admission_queue_depth")
		s.inst.queueWait = r.Histogram("ldap_admission_queue_wait_ns")
		s.inst.shedBusy = r.Counter("ldap_shed_busy_total")
		s.inst.shedUnavailable = r.Counter("ldap_shed_unavailable_total")
		s.inst.throttled = r.Counter("ldap_throttled_total")
		s.inst.backpressure = r.Counter("ldap_accept_backpressure_total")
	})
	return &s.inst
}

// admission lazily builds the overload controller (nil when disabled).
func (s *Server) admission() *admission {
	s.admOnce.Do(func() {
		if s.Overload.enabled() || s.Overload.ClientRate > 0 {
			s.adm = newAdmission(s.Overload, s.Clock, s.instruments())
		}
	})
	return s.adm
}

type serverConn struct {
	srv   *Server
	conn  net.Conn
	state *ConnState
	clock softstate.Clock
	inst  *serverInstruments
	w     *connWriter // coalesces outbound messages onto the wire

	opMu sync.Mutex
	ops  map[int64]context.CancelFunc // in-flight, abandonable operations
}

func (s *Server) newConn(conn net.Conn) *serverConn {
	addr := ""
	if ra := conn.RemoteAddr(); ra != nil {
		addr = ra.String()
	}
	clock := s.Clock
	if clock == nil {
		clock = softstate.RealClock{}
	}
	inst := s.instruments()
	return &serverConn{
		srv:   s,
		conn:  conn,
		state: &ConnState{RemoteAddr: addr},
		clock: clock,
		inst:  inst,
		w:     newConnWriter(conn, s.Clock, inst.batch),
		ops:   map[int64]context.CancelFunc{},
	}
}

func (c *serverConn) serve() {
	root, cancelAll := context.WithCancel(context.Background())
	var opWG sync.WaitGroup
	defer func() {
		// Order matters: close the transport, cancel every in-flight
		// operation (persistent searches block on their context), and only
		// then wait for the operation goroutines to drain, then stop the
		// write coalescer.
		c.conn.Close()
		cancelAll()
		opWG.Wait()
		c.w.close()
	}()
	// Requests frame into one reused buffer: DecodeMessage copies what it
	// keeps, so each ReadPacketBuf may recycle the previous frame.
	r := bufio.NewReaderSize(c.conn, 4<<10)
	var frame []byte
	for {
		var pkt *ber.Packet
		var err error
		pkt, frame, err = ber.ReadPacketBuf(r, frame)
		if err != nil {
			return // EOF or connection failure
		}
		msg, err := DecodeMessage(pkt)
		if err != nil {
			c.srv.logf("ldap: %s: %v", c.state.RemoteAddr, err)
			return
		}
		adm := c.srv.admission()
		switch op := msg.Op.(type) {
		case *UnbindRequest:
			return
		case *AbandonRequest:
			c.abandon(op.IDToAbandon)
		case *BindRequest:
			// Binds are serialized on the connection per RFC 4511 §4.2.1.
			// They never enter the admission queue (that would stall the
			// read loop) but do count against the client's rate.
			if adm.throttled(clientHost(c.state.RemoteAddr)) {
				c.send(msg.ID, shedReply(msg.Op, shedResult(nil)))
				continue
			}
			var start time.Time
			if c.inst.enabled {
				start = c.clock.Now()
			}
			resp := c.srv.Handler.Bind(c.request(root, msg), op)
			if c.inst.enabled {
				c.inst.opDur[opBind].Observe(c.clock.Now().Sub(start))
			}
			c.send(msg.ID, resp)
		default:
			// Overload control happens here, synchronously on the read
			// loop: per-client throttling first, then admission. A shed
			// operation costs one response message — never a goroutine, a
			// worker slot, or unbounded queue residency. Persistent
			// searches bypass the worker queue (they are subscriptions
			// that park for hours; holding a slot would starve the server)
			// but still count against the client rate.
			var ticket *admitTicket
			holdsSlot := false
			if adm != nil {
				if adm.throttled(clientHost(c.state.RemoteAddr)) {
					if reply := shedReply(msg.Op, shedResult(nil)); reply != nil {
						c.send(msg.ID, reply)
					}
					continue
				}
				if adm.cfg.enabled() && !isPersistentSearch(msg) {
					var shedErr error
					ticket, shedErr = adm.tryAcquire()
					if shedErr != nil {
						if reply := shedReply(msg.Op, shedResult(shedErr)); reply != nil {
							c.send(msg.ID, reply)
						}
						continue
					}
					holdsSlot = true
				}
			}
			// A trace starts here — minted locally when a Tracer is
			// configured, or joined when the request carries the
			// trace-request control from a parent hop. The queue span covers
			// the handoff from the read loop to the dispatch goroutine,
			// including any admission-queue wait.
			tr := c.beginTrace(msg)
			queued := tr.Root().Child("queue")
			ctx, cancel := context.WithCancel(root)
			c.opMu.Lock()
			c.ops[msg.ID] = cancel
			c.opMu.Unlock()
			opWG.Add(1)
			go func(msg *Message) {
				defer opWG.Done()
				defer func() {
					cancel()
					c.opMu.Lock()
					delete(c.ops, msg.ID)
					c.opMu.Unlock()
				}()
				if ticket != nil {
					// Queued behind the worker set: wait for a slot off the
					// read loop. Cancellation (abandon, connection close,
					// server shutdown) drops the op without a response —
					// the requester is gone or going.
					if err := ticket.wait(adm, ctx.Done()); err != nil {
						queued.End()
						return
					}
				}
				if holdsSlot {
					admitted := c.clock.Now()
					defer func() {
						adm.release(c.clock.Now().Sub(admitted))
					}()
				}
				queued.End()
				c.dispatch(ctx, msg, tr)
			}(msg)
		}
	}
}

// beginTrace starts (or joins) a trace for one dispatched operation.
// Returns nil — tracing fully off for this request — unless the server has
// a Tracer or the request carries a trace-request control.
func (c *serverConn) beginTrace(msg *Message) *obs.Trace {
	var id string
	depth := 0
	if ctl, ok := FindControl(msg.Controls, obs.OIDTraceRequest); ok {
		if tid, d, err := obs.DecodeTraceRequest(ctl.Value); err == nil {
			id, depth = tid, d
		}
	}
	if c.srv.Tracer == nil && id == "" {
		return nil
	}
	return obs.Begin(c.clock, c.srv.Tracer, opName(msg.Op), c.state.RemoteAddr, id, depth)
}

// isPersistentSearch reports whether msg is a search carrying the
// persistent-search control — a long-lived subscription, exempt from
// worker-slot admission.
func isPersistentSearch(msg *Message) bool {
	if _, ok := msg.Op.(*SearchRequest); !ok {
		return false
	}
	_, ok := FindControl(msg.Controls, OIDPersistentSearch)
	return ok
}

func opName(op Op) string {
	switch op.(type) {
	case *SearchRequest:
		return "search"
	case *AddRequest:
		return "add"
	case *DelRequest:
		return "delete"
	case *ModifyRequest:
		return "modify"
	case *ExtendedRequest:
		return "extended"
	}
	return "other"
}

func (c *serverConn) request(ctx context.Context, msg *Message) *Request {
	return &Request{Ctx: ctx, State: c.state, Controls: msg.Controls}
}

func (c *serverConn) dispatch(ctx context.Context, msg *Message, tr *obs.Trace) {
	req := c.request(ctx, msg)
	if tr != nil {
		req.Span = tr.Root()
		req.TraceID = tr.ID
		req.TraceDepth = tr.Depth
	}
	kind := opSearch
	var start time.Time
	if c.inst.enabled {
		start = c.clock.Now()
		c.inst.inflight.Inc()
		defer c.inst.inflight.Dec()
	}
	var w *connSearchWriter
	var reply Op
	switch op := msg.Op.(type) {
	case *SearchRequest:
		w = &connSearchWriter{conn: c, id: msg.ID, track: tr != nil}
		reply = &SearchResultDone{Result: c.srv.Handler.Search(req, op, w)}
	case *AddRequest:
		kind = opAdd
		reply = &AddResponse{Result: c.srv.Handler.Add(req, op)}
	case *DelRequest:
		kind = opDelete
		reply = &DelResponse{Result: c.srv.Handler.Delete(req, op)}
	case *ModifyRequest:
		kind = opModify
		reply = &ModifyResponse{Result: c.srv.Handler.Modify(req, op)}
	case *ExtendedRequest:
		kind = opExtended
		reply = c.srv.Handler.Extended(req, op)
	default:
		c.srv.logf("ldap: %s: unexpected operation %T", c.state.RemoteAddr, msg.Op)
		return
	}
	if c.inst.enabled {
		c.inst.opDur[kind].Observe(c.clock.Now().Sub(start))
	}
	var ctls []Control
	if tr != nil {
		if w != nil {
			if n := w.entries.Load(); n > 0 {
				tr.Root().AddTimed("encode+write", time.Duration(w.encodeNs.Load()),
					strconv.FormatInt(n, 10)+" entries")
			}
		}
		tr.Finish()
		// The span tree rides back on the final response only when the
		// requester asked for it: parent hops and gridsearch -trace send the
		// trace-request control, plain clients never see the extra bytes.
		if _, ok := FindControl(msg.Controls, obs.OIDTraceRequest); ok {
			ctls = append(ctls, Control{OID: obs.OIDTraceSpans, Value: obs.EncodeSpans(tr.Export())})
		}
	}
	c.send(msg.ID, reply, ctls...)
}

func (c *serverConn) abandon(id int64) {
	c.opMu.Lock()
	cancel, ok := c.ops[id]
	c.opMu.Unlock()
	if ok {
		cancel()
	}
}

// send transmits a response message and flushes: results, done messages,
// and bind outcomes are all latency-sensitive.
func (c *serverConn) send(id int64, op Op, controls ...Control) error {
	return c.w.enqueue(&Message{ID: id, Op: op, Controls: controls}, true)
}

type connSearchWriter struct {
	conn *serverConn
	id   int64
	// track turns on encode/write accounting for traced searches; when
	// false (the common case) SendEntry takes the untimed path — no clock
	// reads, no atomics, no allocations beyond the send itself.
	track    bool
	entries  atomic.Int64
	encodeNs atomic.Int64
}

// SendEntry streams one result entry. Plain streamed entries buffer in the
// connection's coalescing writer (the done message or the size threshold
// flushes the batch); entries carrying per-entry controls are
// persistent-search notifications, which must reach the subscriber now —
// there may be no further traffic on this search for hours.
func (w *connSearchWriter) SendEntry(e *Entry, controls ...Control) error {
	flush := len(controls) > 0
	if !w.track {
		return w.conn.w.enqueue(&Message{ID: w.id,
			Op: &SearchResultEntry{Entry: e}, Controls: controls}, flush)
	}
	start := w.conn.clock.Now()
	err := w.conn.w.enqueue(&Message{ID: w.id,
		Op: &SearchResultEntry{Entry: e}, Controls: controls}, flush)
	w.encodeNs.Add(int64(w.conn.clock.Now().Sub(start)))
	w.entries.Add(1)
	return err
}

func (w *connSearchWriter) SendReferral(urls ...string) error {
	return w.conn.w.enqueue(&Message{ID: w.id,
		Op: &SearchResultReference{URLs: urls}}, false)
}

// ListenAndServe listens on a TCP address and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Addr returns the listener address, if serving.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return nil
	}
	return s.listener.Addr()
}
