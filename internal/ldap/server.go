package ldap

import (
	"bufio"
	"context"
	"errors"
	"log"
	"net"
	"sync"

	"mds2/internal/ber"
	"mds2/internal/softstate"
)

// SASL bind-in-progress result code (RFC 4511 §4.2.2).
const ResultSaslBindInProgress ResultCode = 14

// ConnState carries per-connection server-side state. A Handler's Bind
// implementation records the authenticated identity here; later operations
// consult it for access control decisions.
type ConnState struct {
	RemoteAddr string
	mu         sync.Mutex
	boundDN    string
	identity   any
}

// SetIdentity records the authenticated peer (bound DN plus an opaque
// credential object such as a *gsi.Credential).
func (c *ConnState) SetIdentity(dn string, identity any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.boundDN, c.identity = dn, identity
}

// BoundDN returns the DN established by the last successful bind
// ("" while anonymous).
func (c *ConnState) BoundDN() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.boundDN
}

// Identity returns the opaque credential recorded at bind time.
func (c *ConnState) Identity() any {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.identity
}

// SearchWriter streams search results back to the client. Implementations
// are safe for concurrent use; a persistent search holds one for its
// lifetime and feeds it from change notifications.
type SearchWriter interface {
	// SendEntry transmits one result entry with optional per-entry controls.
	SendEntry(e *Entry, controls ...Control) error
	// SendReferral transmits a continuation reference (LDAP URLs).
	SendReferral(urls ...string) error
}

// Request bundles the decoded operation with its envelope controls and a
// context that is cancelled when the operation is abandoned or the
// connection closes.
type Request struct {
	Ctx      context.Context
	State    *ConnState
	Controls []Control
}

// Handler implements server-side LDAP semantics. GRIS and GIIS are both
// Handlers plugged into the same protocol engine, mirroring how MDS-2
// implements both as OpenLDAP backends behind one front end (§10.4).
type Handler interface {
	Bind(req *Request, op *BindRequest) *BindResponse
	Search(req *Request, op *SearchRequest, w SearchWriter) Result
	Add(req *Request, op *AddRequest) Result
	Delete(req *Request, op *DelRequest) Result
	Modify(req *Request, op *ModifyRequest) Result
	Extended(req *Request, op *ExtendedRequest) *ExtendedResponse
}

// BaseHandler provides refuse-everything defaults so concrete handlers only
// implement the operations they support.
type BaseHandler struct{}

// Bind accepts anonymous binds only.
func (BaseHandler) Bind(_ *Request, op *BindRequest) *BindResponse {
	if op.Name == "" && op.Password == "" && op.SASLMech == "" {
		return &BindResponse{Result: Result{Code: ResultSuccess}}
	}
	return &BindResponse{Result: Result{Code: ResultAuthMethodNotSupported,
		Message: "only anonymous bind supported"}}
}

// Search refuses.
func (BaseHandler) Search(*Request, *SearchRequest, SearchWriter) Result {
	return Result{Code: ResultUnwillingToPerform, Message: "search not supported"}
}

// Add refuses.
func (BaseHandler) Add(*Request, *AddRequest) Result {
	return Result{Code: ResultUnwillingToPerform, Message: "add not supported"}
}

// Delete refuses.
func (BaseHandler) Delete(*Request, *DelRequest) Result {
	return Result{Code: ResultUnwillingToPerform, Message: "delete not supported"}
}

// Modify refuses.
func (BaseHandler) Modify(*Request, *ModifyRequest) Result {
	return Result{Code: ResultUnwillingToPerform, Message: "modify not supported"}
}

// Extended refuses.
func (BaseHandler) Extended(_ *Request, op *ExtendedRequest) *ExtendedResponse {
	return &ExtendedResponse{Result: Result{Code: ResultProtocolError,
		Message: "unsupported extended operation " + op.OID}}
}

// Server is the LDAP protocol engine: it owns connection handling, message
// framing, operation dispatch, and abandon bookkeeping, and delegates
// semantics to a Handler — the same separation the paper credits to the
// OpenLDAP front-end/backend split (§10.1).
type Server struct {
	Handler Handler
	// ErrorLog receives connection-level protocol errors; nil discards them.
	ErrorLog *log.Logger
	// Clock drives per-connection idle-flush ticks (see connWriter); nil
	// means the wall clock. Injectable so FakeClock tests cover the
	// coalescing path deterministically.
	Clock softstate.Clock

	mu       sync.Mutex
	listener net.Listener
	conns    map[*serverConn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer returns a server delegating to h.
func NewServer(h Handler) *Server {
	return &Server{Handler: h, conns: map[*serverConn]struct{}{}}
}

// ErrServerClosed is returned by Serve after Close.
var ErrServerClosed = errors.New("ldap: server closed")

// Serve accepts connections on l until Close is called.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return err
		}
		sc := s.newConn(conn)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return ErrServerClosed
		}
		s.conns[sc] = struct{}{}
		// Add while still holding mu: Close sets closed and calls wg.Wait
		// under the same lock discipline, so Add can never race the Wait.
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			sc.serve()
			s.mu.Lock()
			delete(s.conns, sc)
			s.mu.Unlock()
		}()
	}
}

// ServeConn handles a single pre-established connection (used with
// net.Pipe-based simulated transports) and returns when it closes.
func (s *Server) ServeConn(conn net.Conn) {
	sc := s.newConn(conn)
	s.mu.Lock()
	s.conns[sc] = struct{}{}
	s.mu.Unlock()
	sc.serve()
	s.mu.Lock()
	delete(s.conns, sc)
	s.mu.Unlock()
}

// Close stops accepting and tears down all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	l := s.listener
	for sc := range s.conns {
		sc.conn.Close()
	}
	s.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) logf(format string, args ...any) {
	if s.ErrorLog != nil {
		s.ErrorLog.Printf(format, args...)
	}
}

type serverConn struct {
	srv   *Server
	conn  net.Conn
	state *ConnState
	w     *connWriter // coalesces outbound messages onto the wire

	opMu sync.Mutex
	ops  map[int64]context.CancelFunc // in-flight, abandonable operations
}

func (s *Server) newConn(conn net.Conn) *serverConn {
	addr := ""
	if ra := conn.RemoteAddr(); ra != nil {
		addr = ra.String()
	}
	return &serverConn{
		srv:   s,
		conn:  conn,
		state: &ConnState{RemoteAddr: addr},
		w:     newConnWriter(conn, s.Clock),
		ops:   map[int64]context.CancelFunc{},
	}
}

func (c *serverConn) serve() {
	root, cancelAll := context.WithCancel(context.Background())
	var opWG sync.WaitGroup
	defer func() {
		// Order matters: close the transport, cancel every in-flight
		// operation (persistent searches block on their context), and only
		// then wait for the operation goroutines to drain, then stop the
		// write coalescer.
		c.conn.Close()
		cancelAll()
		opWG.Wait()
		c.w.close()
	}()
	// Requests frame into one reused buffer: DecodeMessage copies what it
	// keeps, so each ReadPacketBuf may recycle the previous frame.
	r := bufio.NewReaderSize(c.conn, 4<<10)
	var frame []byte
	for {
		var pkt *ber.Packet
		var err error
		pkt, frame, err = ber.ReadPacketBuf(r, frame)
		if err != nil {
			return // EOF or connection failure
		}
		msg, err := DecodeMessage(pkt)
		if err != nil {
			c.srv.logf("ldap: %s: %v", c.state.RemoteAddr, err)
			return
		}
		switch op := msg.Op.(type) {
		case *UnbindRequest:
			return
		case *AbandonRequest:
			c.abandon(op.IDToAbandon)
		case *BindRequest:
			// Binds are serialized on the connection per RFC 4511 §4.2.1.
			resp := c.srv.Handler.Bind(c.request(root, msg), op)
			c.send(msg.ID, resp)
		default:
			ctx, cancel := context.WithCancel(root)
			c.opMu.Lock()
			c.ops[msg.ID] = cancel
			c.opMu.Unlock()
			opWG.Add(1)
			go func(msg *Message) {
				defer opWG.Done()
				defer func() {
					cancel()
					c.opMu.Lock()
					delete(c.ops, msg.ID)
					c.opMu.Unlock()
				}()
				c.dispatch(ctx, msg)
			}(msg)
		}
	}
}

func (c *serverConn) request(ctx context.Context, msg *Message) *Request {
	return &Request{Ctx: ctx, State: c.state, Controls: msg.Controls}
}

func (c *serverConn) dispatch(ctx context.Context, msg *Message) {
	req := c.request(ctx, msg)
	switch op := msg.Op.(type) {
	case *SearchRequest:
		w := &connSearchWriter{conn: c, id: msg.ID}
		res := c.srv.Handler.Search(req, op, w)
		c.send(msg.ID, &SearchResultDone{Result: res})
	case *AddRequest:
		c.send(msg.ID, &AddResponse{Result: c.srv.Handler.Add(req, op)})
	case *DelRequest:
		c.send(msg.ID, &DelResponse{Result: c.srv.Handler.Delete(req, op)})
	case *ModifyRequest:
		c.send(msg.ID, &ModifyResponse{Result: c.srv.Handler.Modify(req, op)})
	case *ExtendedRequest:
		c.send(msg.ID, c.srv.Handler.Extended(req, op))
	default:
		c.srv.logf("ldap: %s: unexpected operation %T", c.state.RemoteAddr, msg.Op)
	}
}

func (c *serverConn) abandon(id int64) {
	c.opMu.Lock()
	cancel, ok := c.ops[id]
	c.opMu.Unlock()
	if ok {
		cancel()
	}
}

// send transmits a response message and flushes: results, done messages,
// and bind outcomes are all latency-sensitive.
func (c *serverConn) send(id int64, op Op, controls ...Control) error {
	return c.w.enqueue(&Message{ID: id, Op: op, Controls: controls}, true)
}

type connSearchWriter struct {
	conn *serverConn
	id   int64
}

// SendEntry streams one result entry. Plain streamed entries buffer in the
// connection's coalescing writer (the done message or the size threshold
// flushes the batch); entries carrying per-entry controls are
// persistent-search notifications, which must reach the subscriber now —
// there may be no further traffic on this search for hours.
func (w *connSearchWriter) SendEntry(e *Entry, controls ...Control) error {
	flush := len(controls) > 0
	return w.conn.w.enqueue(&Message{ID: w.id,
		Op: &SearchResultEntry{Entry: e}, Controls: controls}, flush)
}

func (w *connSearchWriter) SendReferral(urls ...string) error {
	return w.conn.w.enqueue(&Message{ID: w.id,
		Op: &SearchResultReference{URLs: urls}}, false)
}

// ListenAndServe listens on a TCP address and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Addr returns the listener address, if serving.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return nil
	}
	return s.listener.Addr()
}
