package ldap

// Persister receives store mutations for durability (the WAL in
// internal/persist; any write-behind would fit). The store invokes the
// methods under its write lock, immediately after the in-memory state
// change — LSN order equals apply order — so implementations must only
// encode and enqueue: never block, never call back into the store.
//
// The returned ack, when non-nil, is invoked by the store AFTER releasing
// its lock; it may block until the mutation is durable and returns the
// persistence error, if any. A nil ack means nothing to wait for (async
// sync modes, or the in-memory store with no persister at all — the
// default path stays zero-cost).
type Persister interface {
	// PersistPut records a batch of full entry upserts. The entries are the
	// store's sealed immutable snapshots: read-only, never retained past
	// the call for mutation.
	PersistPut(entries []*Entry) (ack func() error)
	// PersistRemove records removal of dn, or of its whole subtree.
	PersistRemove(dn DN, subtree bool) (ack func() error)
}

// SetPersister installs p as the store's durability hook. Install at boot,
// after recovery and before traffic; replaying a recovered image through a
// live persister would double-log it.
func (s *Store) SetPersister(p Persister) {
	s.mu.Lock()
	s.persister = p
	s.mu.Unlock()
}

// persistPutLocked forwards an upsert batch to the persister, if any.
// Caller holds s.mu.
func (s *Store) persistPutLocked(entries []*Entry) func() error {
	if s.persister == nil {
		return nil
	}
	return s.persister.PersistPut(entries)
}

// persistRemoveLocked forwards a removal to the persister, if any. Caller
// holds s.mu.
func (s *Store) persistRemoveLocked(dn DN, subtree bool) func() error {
	if s.persister == nil {
		return nil
	}
	return s.persister.PersistRemove(dn, subtree)
}

// await runs an ack outside the store lock, mapping nil to success.
func await(ack func() error) error {
	if ack == nil {
		return nil
	}
	return ack()
}
