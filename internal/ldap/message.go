package ldap

import (
	"errors"
	"fmt"

	"mds2/internal/ber"
)

// Scope is an LDAP search scope.
type Scope int64

// Search scopes (RFC 4511 §4.5.1.2).
const (
	ScopeBaseObject   Scope = 0
	ScopeSingleLevel  Scope = 1
	ScopeWholeSubtree Scope = 2
)

func (s Scope) String() string {
	switch s {
	case ScopeBaseObject:
		return "base"
	case ScopeSingleLevel:
		return "one"
	case ScopeWholeSubtree:
		return "sub"
	}
	return fmt.Sprintf("scope(%d)", int64(s))
}

// ResultCode is an LDAP result code.
type ResultCode int64

// Result codes used by this implementation (RFC 4511 appendix A).
const (
	ResultSuccess                  ResultCode = 0
	ResultOperationsError          ResultCode = 1
	ResultProtocolError            ResultCode = 2
	ResultTimeLimitExceeded        ResultCode = 3
	ResultSizeLimitExceeded        ResultCode = 4
	ResultAuthMethodNotSupported   ResultCode = 7
	ResultStrongerAuthRequired     ResultCode = 8
	ResultReferral                 ResultCode = 10
	ResultNoSuchAttribute          ResultCode = 16
	ResultNoSuchObject             ResultCode = 32
	ResultInvalidCredentials       ResultCode = 49
	ResultInsufficientAccessRights ResultCode = 50
	ResultBusy                     ResultCode = 51
	ResultUnavailable              ResultCode = 52
	ResultUnwillingToPerform       ResultCode = 53
	ResultEntryAlreadyExists       ResultCode = 68
	ResultOther                    ResultCode = 80
)

func (c ResultCode) String() string {
	switch c {
	case ResultSuccess:
		return "success"
	case ResultProtocolError:
		return "protocolError"
	case ResultTimeLimitExceeded:
		return "timeLimitExceeded"
	case ResultSizeLimitExceeded:
		return "sizeLimitExceeded"
	case ResultReferral:
		return "referral"
	case ResultNoSuchObject:
		return "noSuchObject"
	case ResultInvalidCredentials:
		return "invalidCredentials"
	case ResultInsufficientAccessRights:
		return "insufficientAccessRights"
	case ResultUnavailable:
		return "unavailable"
	case ResultUnwillingToPerform:
		return "unwillingToPerform"
	case ResultEntryAlreadyExists:
		return "entryAlreadyExists"
	}
	return fmt.Sprintf("resultCode(%d)", int64(c))
}

// Result is the common LDAPResult component of response operations.
type Result struct {
	Code      ResultCode
	MatchedDN string
	Message   string
	Referrals []string
}

// Err converts a non-success Result into an error, nil otherwise.
func (r Result) Err() error {
	if r.Code == ResultSuccess {
		return nil
	}
	return &ResultError{Result: r}
}

// ResultError wraps a non-success LDAP result as a Go error.
type ResultError struct{ Result Result }

func (e *ResultError) Error() string {
	if e.Result.Message != "" {
		return fmt.Sprintf("ldap: %s: %s", e.Result.Code, e.Result.Message)
	}
	return "ldap: " + e.Result.Code.String()
}

// IsCode reports whether err is a ResultError carrying the given code.
func IsCode(err error, code ResultCode) bool {
	var re *ResultError
	return errors.As(err, &re) && re.Result.Code == code
}

// Application tags for protocol operations (RFC 4511 §4).
const (
	appBindRequest     uint32 = 0
	appBindResponse    uint32 = 1
	appUnbindRequest   uint32 = 2
	appSearchRequest   uint32 = 3
	appSearchEntry     uint32 = 4
	appSearchDone      uint32 = 5
	appModifyRequest   uint32 = 6
	appModifyResponse  uint32 = 7
	appAddRequest      uint32 = 8
	appAddResponse     uint32 = 9
	appDelRequest      uint32 = 10
	appDelResponse     uint32 = 11
	appAbandonRequest  uint32 = 16
	appSearchReference uint32 = 19
	appExtendedRequest uint32 = 23
	appExtendedResp    uint32 = 24
)

// Op is one LDAP protocol operation carried inside a Message envelope.
// Each operation encodes itself two ways: appendOp is the direct-emit hot
// path (see emit.go), encodeOp the Packet-tree reference implementation the
// differential test pins it against.
type Op interface {
	appendOp(*ber.Builder)
	encodeOp() *ber.Packet
}

// Message is the LDAPMessage envelope: an ID, an operation, and optional
// controls.
type Message struct {
	ID       int64
	Op       Op
	Controls []Control
}

// Control is an RFC 4511 §4.1.11 control.
type Control struct {
	OID         string
	Criticality bool
	Value       []byte
}

// Operations.

// BindRequest authenticates a connection. SASLMech empty means simple bind
// with Password; otherwise SASLCreds carries mechanism-specific data (the
// GSI SASL binding uses this).
type BindRequest struct {
	Version   int64
	Name      string
	Password  string
	SASLMech  string
	SASLCreds []byte
}

// BindResponse reports bind outcome; ServerCreds returns mechanism data for
// multi-step SASL exchanges.
type BindResponse struct {
	Result
	ServerCreds []byte
}

// UnbindRequest terminates the session.
type UnbindRequest struct{}

// SearchRequest is the GRIP enquiry/discovery operation.
type SearchRequest struct {
	BaseDN     string
	Scope      Scope
	DerefAlias int64
	SizeLimit  int64
	TimeLimit  int64 // seconds
	TypesOnly  bool
	Filter     *Filter
	Attributes []string
}

// SearchResultEntry carries one matching entry.
type SearchResultEntry struct {
	Entry *Entry
}

// SearchResultReference carries continuation references (LDAP URLs), used by
// a GIIS that cannot chain restricted data and instead refers the client to
// the authoritative GRIS (§10.4).
type SearchResultReference struct {
	URLs []string
}

// SearchResultDone terminates a search.
type SearchResultDone struct{ Result }

// AddRequest inserts an entry; MDS-2.1 maps GRRP registrations onto Add.
type AddRequest struct{ Entry *Entry }

// AddResponse reports add outcome.
type AddResponse struct{ Result }

// DelRequest removes an entry by DN.
type DelRequest struct{ DN string }

// DelResponse reports delete outcome.
type DelResponse struct{ Result }

// ModifyRequest applies attribute changes to an entry.
type ModifyRequest struct {
	DN      string
	Changes []ModifyChange
}

// Modify operations.
const (
	ModAdd     int64 = 0
	ModDelete  int64 = 1
	ModReplace int64 = 2
)

// ModifyChange is one modification.
type ModifyChange struct {
	Op   int64
	Attr Attribute
}

// ModifyResponse reports modify outcome.
type ModifyResponse struct{ Result }

// AbandonRequest cancels the operation with the given message ID; used to
// terminate persistent-search subscriptions.
type AbandonRequest struct{ IDToAbandon int64 }

// ExtendedRequest invokes a named extended operation.
type ExtendedRequest struct {
	OID   string
	Value []byte
}

// ExtendedResponse reports an extended operation outcome.
type ExtendedResponse struct {
	Result
	OID   string
	Value []byte
}

// Encode serializes the message envelope to wire bytes.
func (m *Message) Encode() []byte {
	return m.AppendTo(nil)
}

// EncodeTree serializes the message envelope through the Packet-tree
// reference path. The hot paths use AppendTo (direct emit, emit.go); this
// is kept as executable documentation of the wire form and as the oracle
// for the encode differential test.
func (m *Message) EncodeTree() []byte {
	env := ber.NewSequence().Append(ber.NewInteger(m.ID), m.Op.encodeOp())
	if len(m.Controls) > 0 {
		ctl := ber.NewConstructed(ber.ClassContext, 0)
		for _, c := range m.Controls {
			seq := ber.NewSequence().Append(ber.NewOctetString(c.OID))
			if c.Criticality {
				seq.Append(ber.NewBoolean(true))
			}
			if c.Value != nil {
				seq.Append(ber.NewOctetStringBytes(c.Value))
			}
			ctl.Append(seq)
		}
		env.Append(ctl)
	}
	return ber.Marshal(env)
}

func encodeResult(tag uint32, r Result, extra ...*ber.Packet) *ber.Packet {
	p := ber.NewConstructed(ber.ClassApplication, tag).Append(
		ber.NewEnumerated(int64(r.Code)),
		ber.NewOctetString(r.MatchedDN),
		ber.NewOctetString(r.Message),
	)
	if len(r.Referrals) > 0 {
		ref := ber.NewConstructed(ber.ClassContext, 3)
		for _, u := range r.Referrals {
			ref.Append(ber.NewOctetString(u))
		}
		p.Append(ref)
	}
	return p.Append(extra...)
}

func (b *BindRequest) encodeOp() *ber.Packet {
	p := ber.NewConstructed(ber.ClassApplication, appBindRequest).Append(
		ber.NewInteger(b.Version),
		ber.NewOctetString(b.Name),
	)
	if b.SASLMech == "" {
		p.Append(ber.NewContextString(0, b.Password))
	} else {
		p.Append(ber.NewConstructed(ber.ClassContext, 3).Append(
			ber.NewOctetString(b.SASLMech),
			ber.NewOctetStringBytes(b.SASLCreds),
		))
	}
	return p
}

func (b *BindResponse) encodeOp() *ber.Packet {
	var extra []*ber.Packet
	if b.ServerCreds != nil {
		extra = append(extra, &ber.Packet{Class: ber.ClassContext, Tag: 7, Value: b.ServerCreds})
	}
	return encodeResult(appBindResponse, b.Result, extra...)
}

func (*UnbindRequest) encodeOp() *ber.Packet {
	return &ber.Packet{Class: ber.ClassApplication, Tag: appUnbindRequest}
}

func (s *SearchRequest) encodeOp() *ber.Packet {
	attrs := ber.NewSequence()
	for _, a := range s.Attributes {
		attrs.Append(ber.NewOctetString(a))
	}
	filter := s.Filter
	if filter == nil {
		filter = Present("objectclass")
	}
	return ber.NewConstructed(ber.ClassApplication, appSearchRequest).Append(
		ber.NewOctetString(s.BaseDN),
		ber.NewEnumerated(int64(s.Scope)),
		ber.NewEnumerated(s.DerefAlias),
		ber.NewInteger(s.SizeLimit),
		ber.NewInteger(s.TimeLimit),
		ber.NewBoolean(s.TypesOnly),
		filter.ToBER(),
		attrs,
	)
}

func (s *SearchResultEntry) encodeOp() *ber.Packet {
	attrs := ber.NewSequence()
	for _, a := range s.Entry.Attrs {
		vals := ber.NewSet()
		for _, v := range a.Values {
			vals.Append(ber.NewOctetString(v))
		}
		attrs.Append(ber.NewSequence().Append(ber.NewOctetString(a.Name), vals))
	}
	return ber.NewConstructed(ber.ClassApplication, appSearchEntry).Append(
		ber.NewOctetString(s.Entry.DN.String()), attrs)
}

func (s *SearchResultReference) encodeOp() *ber.Packet {
	p := ber.NewConstructed(ber.ClassApplication, appSearchReference)
	for _, u := range s.URLs {
		p.Append(ber.NewOctetString(u))
	}
	return p
}

func (s *SearchResultDone) encodeOp() *ber.Packet { return encodeResult(appSearchDone, s.Result) }

func (a *AddRequest) encodeOp() *ber.Packet {
	attrs := ber.NewSequence()
	for _, at := range a.Entry.Attrs {
		vals := ber.NewSet()
		for _, v := range at.Values {
			vals.Append(ber.NewOctetString(v))
		}
		attrs.Append(ber.NewSequence().Append(ber.NewOctetString(at.Name), vals))
	}
	return ber.NewConstructed(ber.ClassApplication, appAddRequest).Append(
		ber.NewOctetString(a.Entry.DN.String()), attrs)
}

func (a *AddResponse) encodeOp() *ber.Packet { return encodeResult(appAddResponse, a.Result) }

func (d *DelRequest) encodeOp() *ber.Packet {
	return &ber.Packet{Class: ber.ClassApplication, Tag: appDelRequest, Value: []byte(d.DN)}
}

func (d *DelResponse) encodeOp() *ber.Packet { return encodeResult(appDelResponse, d.Result) }

func (m *ModifyRequest) encodeOp() *ber.Packet {
	changes := ber.NewSequence()
	for _, ch := range m.Changes {
		vals := ber.NewSet()
		for _, v := range ch.Attr.Values {
			vals.Append(ber.NewOctetString(v))
		}
		changes.Append(ber.NewSequence().Append(
			ber.NewEnumerated(ch.Op),
			ber.NewSequence().Append(ber.NewOctetString(ch.Attr.Name), vals),
		))
	}
	return ber.NewConstructed(ber.ClassApplication, appModifyRequest).Append(
		ber.NewOctetString(m.DN), changes)
}

func (m *ModifyResponse) encodeOp() *ber.Packet { return encodeResult(appModifyResponse, m.Result) }

func (a *AbandonRequest) encodeOp() *ber.Packet {
	return &ber.Packet{Class: ber.ClassApplication, Tag: appAbandonRequest,
		Value: ber.AppendInt64(nil, a.IDToAbandon)}
}

func (e *ExtendedRequest) encodeOp() *ber.Packet {
	p := ber.NewConstructed(ber.ClassApplication, appExtendedRequest).Append(
		&ber.Packet{Class: ber.ClassContext, Tag: 0, Value: []byte(e.OID)})
	if e.Value != nil {
		p.Append(&ber.Packet{Class: ber.ClassContext, Tag: 1, Value: e.Value})
	}
	return p
}

func (e *ExtendedResponse) encodeOp() *ber.Packet {
	var extra []*ber.Packet
	if e.OID != "" {
		extra = append(extra, &ber.Packet{Class: ber.ClassContext, Tag: 10, Value: []byte(e.OID)})
	}
	if e.Value != nil {
		extra = append(extra, &ber.Packet{Class: ber.ClassContext, Tag: 11, Value: e.Value})
	}
	return encodeResult(appExtendedResp, e.Result, extra...)
}

// ErrBadMessage reports a wire message that does not parse as LDAP.
var ErrBadMessage = errors.New("ldap: malformed message")

// cloneBytes copies a decoded []byte field out of the frame buffer, so a
// Message survives the decoder reusing that buffer for the next frame
// (ber.ReadPacketBuf). String fields are already copies or views of an
// owned buffer; raw byte fields are the only aliases.
func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// DecodeMessage parses one LDAPMessage from its BER element.
func DecodeMessage(p *ber.Packet) (*Message, error) {
	if p == nil || !p.Constructed || p.Tag != ber.TagSequence || len(p.Children) < 2 {
		return nil, fmt.Errorf("%w: bad envelope %s", ErrBadMessage, p)
	}
	id, err := p.Child(0).Int64()
	if err != nil {
		return nil, fmt.Errorf("%w: message ID: %v", ErrBadMessage, err)
	}
	op, err := decodeOp(p.Child(1))
	if err != nil {
		return nil, err
	}
	m := &Message{ID: id, Op: op}
	if c := p.Child(2); c != nil && c.Class == ber.ClassContext && c.Tag == 0 {
		for _, cseq := range c.Children {
			ctl, err := decodeControl(cseq)
			if err != nil {
				return nil, err
			}
			m.Controls = append(m.Controls, ctl)
		}
	}
	return m, nil
}

// ParseMessageBytes decodes an LDAPMessage from raw wire bytes.
func ParseMessageBytes(b []byte) (*Message, error) {
	p, err := ber.DecodeFull(b)
	if err != nil {
		return nil, err
	}
	return DecodeMessage(p)
}

func decodeControl(p *ber.Packet) (Control, error) {
	if !p.Constructed || len(p.Children) == 0 {
		return Control{}, fmt.Errorf("%w: bad control", ErrBadMessage)
	}
	ctl := Control{OID: p.Child(0).Str()}
	for _, c := range p.Children[1:] {
		switch {
		case c.Tag == ber.TagBoolean && c.Class == ber.ClassUniversal:
			v, err := c.Bool()
			if err != nil {
				return Control{}, err
			}
			ctl.Criticality = v
		case c.Tag == ber.TagOctetString && c.Class == ber.ClassUniversal:
			ctl.Value = cloneBytes(c.Value)
		}
	}
	return ctl, nil
}

func decodeResult(p *ber.Packet) (Result, int, error) {
	if len(p.Children) < 3 {
		return Result{}, 0, fmt.Errorf("%w: short result", ErrBadMessage)
	}
	code, err := p.Child(0).Int64()
	if err != nil {
		return Result{}, 0, err
	}
	r := Result{Code: ResultCode(code), MatchedDN: p.Child(1).Str(), Message: p.Child(2).Str()}
	next := 3
	if c := p.Child(3); c != nil && c.Class == ber.ClassContext && c.Tag == 3 && c.Constructed {
		for _, u := range c.Children {
			r.Referrals = append(r.Referrals, u.Str())
		}
		next = 4
	}
	return r, next, nil
}

func decodeAttrList(p *ber.Packet) ([]Attribute, error) {
	if p == nil || !p.Constructed {
		return nil, fmt.Errorf("%w: bad attribute list", ErrBadMessage)
	}
	var attrs []Attribute
	for _, aseq := range p.Children {
		if len(aseq.Children) != 2 {
			return nil, fmt.Errorf("%w: bad attribute", ErrBadMessage)
		}
		a := Attribute{Name: aseq.Child(0).Str()}
		for _, v := range aseq.Child(1).Children {
			a.Values = append(a.Values, v.Str())
		}
		attrs = append(attrs, a)
	}
	return attrs, nil
}

func decodeOp(p *ber.Packet) (Op, error) {
	if p.Class != ber.ClassApplication {
		return nil, fmt.Errorf("%w: op not application-tagged: %s", ErrBadMessage, p)
	}
	switch p.Tag {
	case appBindRequest:
		if len(p.Children) < 3 {
			return nil, fmt.Errorf("%w: short bind", ErrBadMessage)
		}
		ver, err := p.Child(0).Int64()
		if err != nil {
			return nil, err
		}
		br := &BindRequest{Version: ver, Name: p.Child(1).Str()}
		auth := p.Child(2)
		switch auth.Tag {
		case 0:
			br.Password = auth.Str()
		case 3:
			if len(auth.Children) < 1 {
				return nil, fmt.Errorf("%w: bad sasl", ErrBadMessage)
			}
			br.SASLMech = auth.Child(0).Str()
			if c := auth.Child(1); c != nil {
				br.SASLCreds = cloneBytes(c.Value)
			}
		default:
			return nil, fmt.Errorf("%w: auth choice %d", ErrBadMessage, auth.Tag)
		}
		return br, nil
	case appBindResponse:
		r, next, err := decodeResult(p)
		if err != nil {
			return nil, err
		}
		br := &BindResponse{Result: r}
		if c := p.Child(next); c != nil && c.Class == ber.ClassContext && c.Tag == 7 {
			br.ServerCreds = cloneBytes(c.Value)
		}
		return br, nil
	case appUnbindRequest:
		return &UnbindRequest{}, nil
	case appSearchRequest:
		if len(p.Children) < 8 {
			return nil, fmt.Errorf("%w: short search", ErrBadMessage)
		}
		scope, err1 := p.Child(1).Int64()
		deref, err2 := p.Child(2).Int64()
		size, err3 := p.Child(3).Int64()
		tl, err4 := p.Child(4).Int64()
		typesOnly, err5 := p.Child(5).Bool()
		if err := firstErr(err1, err2, err3, err4, err5); err != nil {
			return nil, err
		}
		filter, err := FilterFromBER(p.Child(6))
		if err != nil {
			return nil, err
		}
		sr := &SearchRequest{
			BaseDN: p.Child(0).Str(), Scope: Scope(scope), DerefAlias: deref,
			SizeLimit: size, TimeLimit: tl, TypesOnly: typesOnly, Filter: filter,
		}
		for _, a := range p.Child(7).Children {
			sr.Attributes = append(sr.Attributes, a.Str())
		}
		return sr, nil
	case appSearchEntry:
		if len(p.Children) != 2 {
			return nil, fmt.Errorf("%w: bad search entry", ErrBadMessage)
		}
		dn, err := ParseDN(p.Child(0).Str())
		if err != nil {
			return nil, err
		}
		attrs, err := decodeAttrList(p.Child(1))
		if err != nil {
			return nil, err
		}
		return &SearchResultEntry{Entry: &Entry{DN: dn, Attrs: attrs}}, nil
	case appSearchReference:
		ref := &SearchResultReference{}
		for _, c := range p.Children {
			ref.URLs = append(ref.URLs, c.Str())
		}
		return ref, nil
	case appSearchDone:
		r, _, err := decodeResult(p)
		if err != nil {
			return nil, err
		}
		return &SearchResultDone{Result: r}, nil
	case appAddRequest:
		if len(p.Children) != 2 {
			return nil, fmt.Errorf("%w: bad add", ErrBadMessage)
		}
		dn, err := ParseDN(p.Child(0).Str())
		if err != nil {
			return nil, err
		}
		attrs, err := decodeAttrList(p.Child(1))
		if err != nil {
			return nil, err
		}
		return &AddRequest{Entry: &Entry{DN: dn, Attrs: attrs}}, nil
	case appAddResponse:
		r, _, err := decodeResult(p)
		if err != nil {
			return nil, err
		}
		return &AddResponse{Result: r}, nil
	case appDelRequest:
		return &DelRequest{DN: p.Str()}, nil
	case appDelResponse:
		r, _, err := decodeResult(p)
		if err != nil {
			return nil, err
		}
		return &DelResponse{Result: r}, nil
	case appModifyRequest:
		if len(p.Children) != 2 {
			return nil, fmt.Errorf("%w: bad modify", ErrBadMessage)
		}
		mr := &ModifyRequest{DN: p.Child(0).Str()}
		for _, chSeq := range p.Child(1).Children {
			if len(chSeq.Children) != 2 || len(chSeq.Child(1).Children) != 2 {
				return nil, fmt.Errorf("%w: bad change", ErrBadMessage)
			}
			op, err := chSeq.Child(0).Int64()
			if err != nil {
				return nil, err
			}
			ch := ModifyChange{Op: op, Attr: Attribute{Name: chSeq.Child(1).Child(0).Str()}}
			for _, v := range chSeq.Child(1).Child(1).Children {
				ch.Attr.Values = append(ch.Attr.Values, v.Str())
			}
			mr.Changes = append(mr.Changes, ch)
		}
		return mr, nil
	case appModifyResponse:
		r, _, err := decodeResult(p)
		if err != nil {
			return nil, err
		}
		return &ModifyResponse{Result: r}, nil
	case appAbandonRequest:
		id, err := ber.ParseInt64(p.Value)
		if err != nil {
			return nil, err
		}
		return &AbandonRequest{IDToAbandon: id}, nil
	case appExtendedRequest:
		er := &ExtendedRequest{}
		for _, c := range p.Children {
			switch c.Tag {
			case 0:
				er.OID = c.Str()
			case 1:
				er.Value = cloneBytes(c.Value)
			}
		}
		if er.OID == "" {
			return nil, fmt.Errorf("%w: extended request without OID", ErrBadMessage)
		}
		return er, nil
	case appExtendedResp:
		r, next, err := decodeResult(p)
		if err != nil {
			return nil, err
		}
		er := &ExtendedResponse{Result: r}
		for _, c := range p.Children[next:] {
			switch c.Tag {
			case 10:
				er.OID = c.Str()
			case 11:
				er.Value = cloneBytes(c.Value)
			}
		}
		return er, nil
	}
	return nil, fmt.Errorf("%w: unknown operation tag %d", ErrBadMessage, p.Tag)
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// Persistent search (draft-ietf-ldapext-psearch, cited as [32] in the paper)
// lets GRIP support subscription: the server holds the search open and
// streams entry-change notifications.

// Control OIDs.
const (
	// OIDPersistentSearch requests subscription semantics on a search.
	OIDPersistentSearch = "2.16.840.1.113730.3.4.3"
	// OIDEntryChangeNotification accompanies streamed change entries.
	OIDEntryChangeNotification = "2.16.840.1.113730.3.4.7"
)

// Change types for persistent search.
const (
	ChangeAdd    int64 = 1
	ChangeDelete int64 = 2
	ChangeModify int64 = 4
	ChangeAll    int64 = 1 | 2 | 4 | 8
)

// PersistentSearch describes the decoded persistent-search control value.
type PersistentSearch struct {
	ChangeTypes int64
	ChangesOnly bool
	ReturnECs   bool
}

// NewPersistentSearchControl builds the subscription control.
func NewPersistentSearchControl(ps PersistentSearch) Control {
	val := ber.Marshal(ber.NewSequence().Append(
		ber.NewInteger(ps.ChangeTypes),
		ber.NewBoolean(ps.ChangesOnly),
		ber.NewBoolean(ps.ReturnECs),
	))
	return Control{OID: OIDPersistentSearch, Criticality: true, Value: val}
}

// ParsePersistentSearch decodes a persistent-search control value.
func ParsePersistentSearch(c Control) (PersistentSearch, error) {
	if c.OID != OIDPersistentSearch {
		return PersistentSearch{}, fmt.Errorf("%w: not a persistent search control", ErrBadMessage)
	}
	p, err := ber.DecodeFull(c.Value)
	if err != nil {
		return PersistentSearch{}, err
	}
	if len(p.Children) != 3 {
		return PersistentSearch{}, fmt.Errorf("%w: bad psearch value", ErrBadMessage)
	}
	ct, err1 := p.Child(0).Int64()
	co, err2 := p.Child(1).Bool()
	re, err3 := p.Child(2).Bool()
	if err := firstErr(err1, err2, err3); err != nil {
		return PersistentSearch{}, err
	}
	return PersistentSearch{ChangeTypes: ct, ChangesOnly: co, ReturnECs: re}, nil
}

// NewEntryChangeControl builds the notification control attached to each
// streamed persistent-search entry.
func NewEntryChangeControl(changeType int64) Control {
	val := ber.Marshal(ber.NewSequence().Append(ber.NewEnumerated(changeType)))
	return Control{OID: OIDEntryChangeNotification, Value: val}
}

// ParseEntryChange extracts the change type from an entry-change control.
func ParseEntryChange(c Control) (int64, error) {
	if c.OID != OIDEntryChangeNotification {
		return 0, fmt.Errorf("%w: not an entry change control", ErrBadMessage)
	}
	p, err := ber.DecodeFull(c.Value)
	if err != nil {
		return 0, err
	}
	if len(p.Children) < 1 {
		return 0, fmt.Errorf("%w: bad entry change value", ErrBadMessage)
	}
	return p.Child(0).Int64()
}

// FindControl returns the first control with the given OID.
func FindControl(controls []Control, oid string) (Control, bool) {
	for _, c := range controls {
		if c.OID == oid {
			return c, true
		}
	}
	return Control{}, false
}
