package ldap

import (
	"net"
	"strings"
	"testing"
	"time"
)

// TestHealthCheckProbe: against a live server the probe passes; after Close
// it fails at dial; against a server shedding binds it fails at bind.
func TestHealthCheckProbe(t *testing.T) {
	store := NewStore()
	srv := NewServer(store)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	addr := l.Addr().String()

	if d, err := (HealthCheck{Addr: addr}).Probe(); err != nil {
		t.Fatalf("probe against live server: %v (after %v)", err, d)
	}

	srv.Close()
	if _, err := (HealthCheck{Addr: addr, Timeout: 2 * time.Second}).Probe(); err == nil {
		t.Fatal("probe against closed server passed")
	} else if !strings.Contains(err.Error(), "dial") {
		t.Fatalf("closed-server probe error = %v, want dial failure", err)
	}
}

// TestHealthCheckFailsWhenThrottled: a server that sheds the probe's bind
// reports unhealthy — overload is a health signal, not a silent state.
func TestHealthCheckFailsWhenThrottled(t *testing.T) {
	store := NewStore()
	srv := NewServer(store)
	// Rate so low the very first bind finds an empty bucket after the
	// warmup probe drains the single-token burst.
	srv.Overload = OverloadConfig{ClientRate: 0.0001, ClientBurst: 1}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	go srv.Serve(l)
	addr := l.Addr().String()

	// First probe spends the burst token on its bind...
	if _, err := (HealthCheck{Addr: addr}).Probe(); err == nil {
		t.Fatal("first probe should fail: bind consumed the only token, the rootdse search is throttled")
	}
	// ...and every later probe fails at bind.
	if _, err := (HealthCheck{Addr: addr}).Probe(); err == nil {
		t.Fatal("throttled probe passed")
	} else if !IsCode(err, ResultBusy) {
		t.Fatalf("throttled probe error = %v, want busy", err)
	}
}
