package ldap

import (
	"net"
	"strings"
	"testing"
	"time"
)

// TestHealthCheckProbe: against a live server the probe passes; after Close
// it fails at dial; against a server shedding binds it fails at bind.
func TestHealthCheckProbe(t *testing.T) {
	store := NewStore()
	srv := NewServer(store)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	addr := l.Addr().String()

	if d, err := (HealthCheck{Addr: addr}).Probe(); err != nil {
		t.Fatalf("probe against live server: %v (after %v)", err, d)
	}

	srv.Close()
	if _, err := (HealthCheck{Addr: addr, Timeout: 2 * time.Second}).Probe(); err == nil {
		t.Fatal("probe against closed server passed")
	} else if !strings.Contains(err.Error(), "dial") {
		t.Fatalf("closed-server probe error = %v, want dial failure", err)
	}
}

// TestHealthCheckFailsWhenThrottled: a server that sheds the probe's bind
// reports unhealthy — overload is a health signal, not a silent state.
func TestHealthCheckFailsWhenThrottled(t *testing.T) {
	store := NewStore()
	srv := NewServer(store)
	// Rate so low the very first bind finds an empty bucket after the
	// warmup probe drains the single-token burst.
	srv.Overload = OverloadConfig{ClientRate: 0.0001, ClientBurst: 1}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	go srv.Serve(l)
	addr := l.Addr().String()

	// First probe spends the burst token on its bind...
	if _, err := (HealthCheck{Addr: addr}).Probe(); err == nil {
		t.Fatal("first probe should fail: bind consumed the only token, the rootdse search is throttled")
	}
	// ...and every later probe fails at bind.
	if _, err := (HealthCheck{Addr: addr}).Probe(); err == nil {
		t.Fatal("throttled probe passed")
	} else if !IsCode(err, ResultBusy) {
		t.Fatalf("throttled probe error = %v, want busy", err)
	}
}

func TestParseProbeMode(t *testing.T) {
	ok := map[string]ProbeMode{
		"":                ProbeAnonymous,
		"anonymous":       ProbeAnonymous,
		"Anon":            ProbeAnonymous,
		"simple-bind":     ProbeSimpleBind,
		"simple":          ProbeSimpleBind,
		"bind":            ProbeSimpleBind,
		" scoped-search ": ProbeScopedSearch,
		"search":          ProbeScopedSearch,
		"SCOPED":          ProbeScopedSearch,
	}
	for in, want := range ok {
		if got, err := ParseProbeMode(in); err != nil || got != want {
			t.Errorf("ParseProbeMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseProbeMode("deep"); err == nil {
		t.Fatal("unknown probe mode parsed")
	}
	// Every real mode's String round-trips through the parser, so the flag
	// vocabulary and the health-check names stay in sync.
	for _, m := range []ProbeMode{ProbeAnonymous, ProbeSimpleBind, ProbeScopedSearch} {
		if got, err := ParseProbeMode(m.String()); err != nil || got != m {
			t.Errorf("round trip %v: got %v, %v", m, got, err)
		}
	}
}

// TestHealthCheckProbeModes: the simple-bind and scoped-search modes against
// a store-backed server (which accepts any non-SASL bind): scoped search
// passes when the MinEntries floor is met, fails when it is not, and fails
// on an unparsable filter.
func TestHealthCheckProbeModes(t *testing.T) {
	store := NewStore()
	base := MustParseDN("o=grid")
	if err := store.Put(NewEntry(base).
		Add("objectclass", "organization").Add("o", "grid")); err != nil {
		t.Fatal(err)
	}
	if err := store.Put(NewEntry(base.ChildAVA("hn", "hostA")).
		Add("objectclass", "computer").Add("hn", "hostA")); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	go srv.Serve(l)
	addr := l.Addr().String()

	if d, err := (HealthCheck{Addr: addr, Mode: ProbeSimpleBind,
		BindDN: "cn=probe", BindPassword: "s3kr1t"}).Probe(); err != nil {
		t.Fatalf("simple-bind probe: %v (after %v)", err, d)
	}

	scoped := HealthCheck{Addr: addr, Mode: ProbeScopedSearch,
		Base: "o=grid", Scope: ScopeWholeSubtree, MinEntries: 2}
	if d, err := scoped.Probe(); err != nil {
		t.Fatalf("scoped-search probe: %v (after %v)", err, d)
	}

	scoped.MinEntries = 3
	if _, err := scoped.Probe(); err == nil {
		t.Fatal("scoped-search probe passed with only 2 of 3 required entries")
	} else if !strings.Contains(err.Error(), "entries") {
		t.Fatalf("under-floor probe error = %v, want entry-count failure", err)
	}

	scoped.MinEntries = 0
	scoped.Filter = "(((broken"
	if _, err := scoped.Probe(); err == nil {
		t.Fatal("scoped-search probe passed with unparsable filter")
	}
}
