//go:build !mdsdebug

package ldap

// Release twin of the snapshot-seal sanitizer (seal_mdsdebug.go):
// zero-sized state and empty hooks that inline to nothing.

type entrySan struct{}

func (e *Entry) seal() {}

func (e *Entry) verifySeal() {}

func (e *Entry) checkMutable() {}

func verifyEntries(es []*Entry) []*Entry { return es }

// SealSnapshots is the release no-op twin of the mdsdebug seal extension
// for caches that publish shared snapshots (see seal_mdsdebug.go).
func SealSnapshots(es []*Entry) {}
