package ldap

import (
	"fmt"
	"sort"
	"strings"
)

// ObjectClass describes a named entry type: the attributes an entry tagged
// with the class must and may carry. Section 8 of the paper observes that a
// Grid information service should support typing without forcing it; the
// Schema type therefore validates only entries whose classes it knows and,
// in lenient mode, passes unknown classes through untouched.
type ObjectClass struct {
	Name string
	// Super names a parent class whose must/may sets are inherited.
	Super string
	Must  []string
	May   []string
}

// Schema is a registry of object classes. The zero value is empty and
// lenient; use NewGridSchema for the classes used throughout MDS-2.
type Schema struct {
	classes map[string]*ObjectClass
	// Strict rejects entries carrying object classes the schema does not
	// define; the default (lenient) accepts them, per §8.
	Strict bool
}

// NewSchema returns an empty, lenient schema.
func NewSchema() *Schema { return &Schema{classes: map[string]*ObjectClass{}} }

// Define registers an object class, replacing any prior definition.
func (s *Schema) Define(oc ObjectClass) {
	if s.classes == nil {
		s.classes = map[string]*ObjectClass{}
	}
	cp := oc
	s.classes[strings.ToLower(oc.Name)] = &cp
}

// Lookup returns the definition of the named class, if known.
func (s *Schema) Lookup(name string) (*ObjectClass, bool) {
	oc, ok := s.classes[strings.ToLower(name)]
	return oc, ok
}

// Classes returns the defined class names, sorted.
func (s *Schema) Classes() []string {
	out := make([]string, 0, len(s.classes))
	for _, oc := range s.classes {
		out = append(out, oc.Name)
	}
	sort.Strings(out)
	return out
}

// requirements accumulates the transitive must/may sets for a class chain.
func (s *Schema) requirements(name string, must, may map[string]bool) error {
	seen := map[string]bool{}
	for name != "" {
		key := strings.ToLower(name)
		if seen[key] {
			return fmt.Errorf("ldap: object class inheritance cycle at %q", name)
		}
		seen[key] = true
		oc, ok := s.classes[key]
		if !ok {
			if s.Strict {
				return fmt.Errorf("ldap: unknown object class %q", name)
			}
			return nil
		}
		for _, a := range oc.Must {
			must[strings.ToLower(a)] = true
		}
		for _, a := range oc.May {
			may[strings.ToLower(a)] = true
		}
		name = oc.Super
	}
	return nil
}

// Validate checks an entry against the schema: it must carry at least one
// object class; every known class's mandatory attributes must be present;
// and every attribute must be allowed by some class (unless an unknown
// class is present in lenient mode, which disables the closed-world check).
func (s *Schema) Validate(e *Entry) error {
	classes := e.ObjectClasses()
	if len(classes) == 0 {
		return fmt.Errorf("ldap: entry %q has no objectclass", e.DN)
	}
	must := map[string]bool{}
	may := map[string]bool{"objectclass": true}
	openWorld := false
	for _, c := range classes {
		if _, ok := s.Lookup(c); !ok {
			if s.Strict {
				return fmt.Errorf("ldap: entry %q: unknown object class %q", e.DN, c)
			}
			openWorld = true
			continue
		}
		if err := s.requirements(c, must, may); err != nil {
			return err
		}
	}
	for a := range must {
		if !e.Has(a) {
			return fmt.Errorf("ldap: entry %q missing mandatory attribute %q", e.DN, a)
		}
	}
	if openWorld {
		return nil
	}
	for _, attr := range e.Attrs {
		key := strings.ToLower(attr.Name)
		if !must[key] && !may[key] {
			return fmt.Errorf("ldap: entry %q: attribute %q not allowed by classes %v", e.DN, attr.Name, classes)
		}
	}
	return nil
}

// NewGridSchema returns the object classes used by the MDS-2 reproduction,
// covering the Figure 3 examples (computer, service/queue, perf/loadaverage,
// storage/filesystem) plus the network-link and registration classes the
// GRIS/GIIS implementations publish.
func NewGridSchema() *Schema {
	s := NewSchema()
	s.Define(ObjectClass{Name: "top", May: []string{"description", "ttl", "timestamp"}})
	s.Define(ObjectClass{
		Name: "computer", Super: "top",
		Must: []string{"hn"},
		May: []string{"system", "osversion", "cputype", "cpucount", "freecpus",
			"memorymb", "vo", "contact"},
	})
	s.Define(ObjectClass{
		Name: "service", Super: "top",
		Must: []string{"url"},
		May:  []string{"servicetype", "hn"},
	})
	s.Define(ObjectClass{
		Name: "queue", Super: "service",
		Must: []string{"queue"},
		May:  []string{"dispatchtype", "maxjobs", "runningjobs", "queuedjobs"},
	})
	s.Define(ObjectClass{
		Name: "perf", Super: "top",
		Must: []string{"perf"},
		May:  []string{"period", "hn"},
	})
	s.Define(ObjectClass{
		Name: "loadaverage", Super: "perf",
		May: []string{"load1", "load5", "load15", "freecpus"},
	})
	s.Define(ObjectClass{
		Name: "storage", Super: "top",
		Must: []string{"store"},
		May:  []string{"hn"},
	})
	s.Define(ObjectClass{
		Name: "filesystem", Super: "storage",
		Must: []string{"path"},
		May:  []string{"free", "total", "mounted"},
	})
	s.Define(ObjectClass{
		Name: "networklink", Super: "top",
		Must: []string{"src", "dst"},
		May: []string{"bandwidthmbps", "latencyms", "predictedbandwidthmbps",
			"predictedlatencyms", "forecaster", "measuredat"},
	})
	s.Define(ObjectClass{
		Name: "replica", Super: "top",
		Must: []string{"lfn", "url"},
		May:  []string{"sizebytes", "store", "hn"},
	})
	s.Define(ObjectClass{
		Name: "mdsservice", Super: "service",
		May: []string{"mdstype", "vo", "provider", "suffix", "providersuffix"},
	})
	s.Define(ObjectClass{
		Name: "organization", Super: "top",
		Must: []string{"o"},
	})
	s.Define(ObjectClass{
		Name: "application", Super: "top",
		Must: []string{"app"},
		May:  []string{"status", "hn", "progress", "accuracy", "algorithm"},
	})
	return s
}
