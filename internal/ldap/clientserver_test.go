package ldap

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// startTestServer serves a Store over loopback TCP and returns a connected
// client plus the store.
func startTestServer(t *testing.T) (*Client, *Store) {
	t.Helper()
	store := NewStore()
	srv := NewServer(store)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, store
}

func TestClientServerEndToEnd(t *testing.T) {
	c, _ := startTestServer(t)
	if err := c.Bind("", ""); err != nil {
		t.Fatal(err)
	}
	e := NewEntry(MustParseDN("hn=hostX, o=grid")).
		Add("objectclass", "computer").
		Add("hn", "hostX").
		Add("load5", "3.2")
	if err := c.Add(e); err != nil {
		t.Fatal(err)
	}
	// Duplicate add reports entryAlreadyExists.
	if err := c.Add(e); !IsCode(err, ResultEntryAlreadyExists) {
		t.Fatalf("duplicate add: %v", err)
	}
	res, err := c.Search(&SearchRequest{
		BaseDN: "o=grid", Scope: ScopeWholeSubtree,
		Filter: MustParseFilter("(objectclass=computer)"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 1 || res.Entries[0].First("load5") != "3.2" {
		t.Fatalf("search = %v", res.Entries)
	}
	// Attribute selection travels the wire.
	res, err = c.Search(&SearchRequest{
		BaseDN: "o=grid", Scope: ScopeWholeSubtree,
		Filter: MustParseFilter("(hn=hostX)"), Attributes: []string{"hn"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 1 || len(res.Entries[0].Attrs) != 1 {
		t.Fatalf("selected search = %v", res.Entries[0])
	}
	if err := c.Modify("hn=hostX, o=grid", []ModifyChange{
		{Op: ModReplace, Attr: Attribute{Name: "load5", Values: []string{"0.5"}}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("hn=hostX, o=grid"); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("hn=hostX, o=grid"); !IsCode(err, ResultNoSuchObject) {
		t.Fatalf("second delete: %v", err)
	}
}

func TestClientConcurrentSearches(t *testing.T) {
	c, store := startTestServer(t)
	for i := 0; i < 50; i++ {
		e := NewEntry(MustParseDN(fmt.Sprintf("hn=host%02d, o=grid", i))).
			Add("objectclass", "computer").
			Add("hn", fmt.Sprintf("host%02d", i)).
			Add("idx", fmt.Sprintf("%d", i))
		if err := store.Put(e); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			res, err := c.Search(&SearchRequest{
				BaseDN: "o=grid", Scope: ScopeWholeSubtree,
				Filter: MustParseFilter(fmt.Sprintf("(idx=%d)", g)),
			})
			if err != nil {
				errs <- err
				return
			}
			if len(res.Entries) != 1 {
				errs <- fmt.Errorf("goroutine %d: %d entries", g, len(res.Entries))
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestClientPersistentSearchOverWire(t *testing.T) {
	c, store := startTestServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	got := make(chan *Entry, 8)
	go func() {
		c.SearchFunc(ctx, &SearchRequest{BaseDN: "o=grid", Scope: ScopeWholeSubtree},
			[]Control{NewPersistentSearchControl(PersistentSearch{
				ChangeTypes: ChangeAll, ChangesOnly: true, ReturnECs: true})},
			func(e *Entry, cs []Control) error {
				got <- e
				return nil
			}, nil, nil)
	}()
	time.Sleep(50 * time.Millisecond) // let the subscription establish
	e := NewEntry(MustParseDN("hn=fresh, o=grid")).Add("objectclass", "computer").Add("hn", "fresh")
	if err := store.Put(e); err != nil {
		t.Fatal(err)
	}
	select {
	case entry := <-got:
		if !entry.DN.Equal(e.DN) {
			t.Errorf("notified %q", entry.DN)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("no push notification over the wire")
	}
	cancel() // abandons the search server-side
	time.Sleep(20 * time.Millisecond)
	// Connection must remain usable after the abandon.
	if _, err := c.Search(&SearchRequest{BaseDN: "o=grid", Scope: ScopeWholeSubtree}); err != nil {
		t.Fatalf("post-abandon search: %v", err)
	}
}

func TestClientServerSurvivesClientCrash(t *testing.T) {
	store := NewStore()
	srv := NewServer(store)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	// Abruptly close a raw connection mid-session.
	raw, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	raw.Write([]byte{0x30, 0x50}) // claim a 0x50-byte message, then vanish
	raw.Close()

	// Server keeps serving others.
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Bind("", ""); err != nil {
		t.Fatal(err)
	}
}

func TestClientServerRejectsGarbage(t *testing.T) {
	store := NewStore()
	srv := NewServer(store)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	raw, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	// A valid BER element that is not an LDAP message: server should close.
	raw.Write([]byte{0x04, 0x02, 'h', 'i'})
	buf := make([]byte, 1)
	raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := raw.Read(buf); err == nil {
		t.Error("expected connection close on garbage")
	}
}

func TestClientTimeout(t *testing.T) {
	// A handler that never answers searches.
	h := &stallHandler{stall: make(chan struct{})}
	defer close(h.stall)
	srv := NewServer(h)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Timeout = 50 * time.Millisecond
	start := time.Now()
	_, err = c.Search(&SearchRequest{BaseDN: "o=g"})
	if err == nil {
		t.Fatal("expected timeout")
	}
	if time.Since(start) > 2*time.Second {
		t.Error("timeout took too long")
	}
}

type stallHandler struct {
	BaseHandler
	stall chan struct{}
}

func (h *stallHandler) Search(req *Request, _ *SearchRequest, _ SearchWriter) Result {
	select {
	case <-h.stall:
	case <-req.Ctx.Done():
	}
	return Result{Code: ResultSuccess}
}

func TestServerConnStateIdentity(t *testing.T) {
	st := &ConnState{}
	if st.BoundDN() != "" || st.Identity() != nil {
		t.Error("fresh state should be anonymous")
	}
	st.SetIdentity("cn=alice", 42)
	if st.BoundDN() != "cn=alice" || st.Identity() != 42 {
		t.Error("identity not recorded")
	}
}

func TestServerCloseUnblocksServe(t *testing.T) {
	srv := NewServer(NewStore())
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	time.Sleep(10 * time.Millisecond)
	srv.Close()
	select {
	case err := <-done:
		if err != ErrServerClosed {
			t.Errorf("Serve returned %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
}

func BenchmarkWireSearchRoundTrip(b *testing.B) {
	store := NewStore()
	for i := 0; i < 100; i++ {
		store.Put(NewEntry(MustParseDN(fmt.Sprintf("hn=h%d, o=g", i))).
			Add("objectclass", "computer").Add("hn", fmt.Sprintf("h%d", i)))
	}
	srv := NewServer(store)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()
	c, err := Dial(l.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	req := &SearchRequest{BaseDN: "o=g", Scope: ScopeWholeSubtree,
		Filter: MustParseFilter("(hn=h42)")}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Search(req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDirectSearch measures the same query without the wire, isolating
// protocol overhead (DESIGN.md ablation: wire vs direct dispatch).
func BenchmarkDirectSearch(b *testing.B) {
	store := NewStore()
	for i := 0; i < 100; i++ {
		store.Put(NewEntry(MustParseDN(fmt.Sprintf("hn=h%d, o=g", i))).
			Add("objectclass", "computer").Add("hn", fmt.Sprintf("h%d", i)))
	}
	base := MustParseDN("o=g")
	f := MustParseFilter("(hn=h42)")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := store.Find(base, ScopeWholeSubtree, f); len(got) != 1 {
			b.Fatal("missing")
		}
	}
}
