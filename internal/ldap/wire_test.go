package ldap

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"mds2/internal/softstate"
)

// wireCorpus builds messages covering every operation type, the control
// envelope, and length shapes that exercise both the short-form and
// long-form (shifted back-patch) paths of the direct emitter.
func wireCorpus() []*Message {
	long := strings.Repeat("x", 300) // forces multi-byte BER lengths
	entry := NewEntry(MustParseDN("queue=default, hn=hostX, o=grid")).
		Add("objectclass", "computer", "queue").
		Add("hn", "hostX").
		Add("system", "linux").
		Add("description", long).
		Add("load5", "0.42")
	msgs := []*Message{
		{ID: 1, Op: &BindRequest{Version: 3, Name: "cn=admin", Password: "secret"}},
		{ID: 2, Op: &BindRequest{Version: 3, Name: "cn=gsi", SASLMech: "GSI", SASLCreds: []byte{0, 1, 2, 0xff}}},
		{ID: 2, Op: &BindRequest{Version: 3, SASLMech: "EXTERNAL"}}, // SASL, no creds
		{ID: 3, Op: &BindResponse{Result: Result{Code: ResultSuccess}}},
		{ID: 3, Op: &BindResponse{
			Result:      Result{Code: ResultSaslBindInProgress, Message: "step"},
			ServerCreds: []byte("challenge"),
		}},
		{ID: 4, Op: &UnbindRequest{}},
		{ID: 5, Op: &SearchRequest{
			BaseDN: "o=grid", Scope: ScopeWholeSubtree, DerefAlias: 3,
			SizeLimit: 100, TimeLimit: 30, TypesOnly: true,
			Filter:     MustParseFilter("(&(objectclass=computer)(|(system=mips irix)(system=linux))(!(cpucount<=8)))"),
			Attributes: []string{"hn", "load5"},
		}},
		{ID: 5, Op: &SearchRequest{BaseDN: "o=grid", Scope: ScopeBaseObject}}, // nil filter default
		{ID: 6, Op: &SearchResultEntry{Entry: entry}},
		{ID: 6, Op: &SearchResultEntry{Entry: NewEntry(MustParseDN("cn=alice+uid=42, o=grid"))}},
		{ID: 7, Op: &SearchResultReference{URLs: []string{
			"ldap://gris1.example.org:389/ou=s1,o=grid", "ldap://gris2.example.org"}}},
		{ID: 8, Op: &SearchResultDone{Result{Code: ResultSuccess}}},
		{ID: 8, Op: &SearchResultDone{Result{
			Code: ResultNoSuchObject, MatchedDN: "o=grid", Message: "no " + long,
			Referrals: []string{"ldap://other.example.org/o=grid"},
		}}},
		{ID: 9, Op: &AddRequest{Entry: entry}},
		{ID: 9, Op: &AddResponse{Result{Code: ResultEntryAlreadyExists, Message: "dup"}}},
		{ID: 10, Op: &DelRequest{DN: "hn=hostX, o=grid"}},
		{ID: 10, Op: &DelResponse{Result{Code: ResultSuccess}}},
		{ID: 11, Op: &ModifyRequest{DN: "hn=hostX, o=grid", Changes: []ModifyChange{
			{Op: ModReplace, Attr: Attribute{Name: "load5", Values: []string{"1.5"}}},
			{Op: ModAdd, Attr: Attribute{Name: "queue", Values: []string{"batch", "interactive"}}},
			{Op: ModDelete, Attr: Attribute{Name: "stale"}},
		}}},
		{ID: 11, Op: &ModifyResponse{Result{Code: ResultSuccess}}},
		{ID: 12, Op: &AbandonRequest{IDToAbandon: 5}},
		{ID: 13, Op: &ExtendedRequest{OID: "1.3.6.1.4.1.1466.20037"}},
		{ID: 13, Op: &ExtendedRequest{OID: "1.2.3.4", Value: []byte(long)}},
		{ID: 14, Op: &ExtendedResponse{Result: Result{Code: ResultSuccess}, OID: "1.2.3.4", Value: []byte{0xde, 0xad}}},
		{ID: 14, Op: &ExtendedResponse{Result: Result{Code: ResultProtocolError, Message: "nope"}}},
		{ID: 15, Op: &SearchRequest{BaseDN: "o=grid", Scope: ScopeWholeSubtree,
			Filter: MustParseFilter("(objectclass=*)")},
			Controls: []Control{NewPersistentSearchControl(PersistentSearch{
				ChangeTypes: ChangeAll, ChangesOnly: true, ReturnECs: true})}},
		{ID: 15, Op: &SearchResultEntry{Entry: entry},
			Controls: []Control{NewEntryChangeControl(ChangeModify)}},
		{ID: 16, Op: &DelRequest{DN: "cn=x, o=grid"},
			Controls: []Control{{OID: "1.1.1", Criticality: true}, {OID: "1.1.2", Value: []byte{}}}},
	}
	// Filter shapes from the fuzz seeds: substrings, present, ranges, escapes.
	for _, f := range []string{
		"(load5=*)", "(cn=ho*st*X)", "(cn=*suffix)", "(cn=prefix*)",
		"(cn>=a)", "(cn<=z)", "(cn=paren\\29)", "(cn~=approx)",
	} {
		msgs = append(msgs, &Message{ID: 20, Op: &SearchRequest{
			BaseDN: "ou=s0, o=grid", Scope: ScopeSingleLevel, Filter: MustParseFilter(f)}})
	}
	return msgs
}

// TestEncodeDifferential pins the direct emitter to the Packet-tree
// reference encoder byte for byte: any divergence is a wire break.
func TestEncodeDifferential(t *testing.T) {
	for i, m := range wireCorpus() {
		direct := m.AppendTo(nil)
		tree := m.EncodeTree()
		if !bytes.Equal(direct, tree) {
			t.Errorf("message %d (%T): direct emit diverges from tree\n direct % x\n tree   % x",
				i, m.Op, direct, tree)
		}
		// AppendTo must be append-only on a non-empty dst.
		prefixed := m.AppendTo([]byte("prefix"))
		if !bytes.HasPrefix(prefixed, []byte("prefix")) || !bytes.Equal(prefixed[6:], tree) {
			t.Errorf("message %d (%T): AppendTo corrupts existing dst bytes", i, m.Op)
		}
	}
}

// FuzzEncodeDecode: any bytes that parse as a message must re-encode
// identically through both encoders and survive a second round trip.
func FuzzEncodeDecode(f *testing.F) {
	for _, m := range wireCorpus() {
		f.Add(m.Encode())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseMessageBytes(data)
		if err != nil {
			return
		}
		direct := m.AppendTo(nil)
		if tree := m.EncodeTree(); !bytes.Equal(direct, tree) {
			t.Fatalf("direct/tree divergence for %T:\n direct % x\n tree   % x", m.Op, direct, tree)
		}
		m2, err := ParseMessageBytes(direct)
		if err != nil {
			t.Fatalf("re-decode of own encoding failed: %v", err)
		}
		if again := m2.AppendTo(nil); !bytes.Equal(direct, again) {
			t.Fatalf("encoding not stable across round trips for %T", m.Op)
		}
	})
}

// stallExtHandler stalls Extended until released, so a client-side timeout
// fires while the operation is still pending server-side.
type stallExtHandler struct {
	BaseHandler
	stall chan struct{}
}

func (h *stallExtHandler) Extended(req *Request, op *ExtendedRequest) *ExtendedResponse {
	select {
	case <-h.stall:
	case <-req.Ctx.Done():
	}
	return &ExtendedResponse{Result: Result{Code: ResultSuccess}, OID: op.OID}
}

// TestClientTimeoutLeak is the regression test for the timeout-path leak:
// a timed-out round trip must remove its pending routing entry, and the
// late response must be counted as unknown without wedging the connection.
func TestClientTimeoutLeak(t *testing.T) {
	h := &stallExtHandler{stall: make(chan struct{})}
	srv := NewServer(h)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	fc := softstate.NewFakeClock()
	c.Clock = fc
	c.Timeout = 5 * time.Second

	errCh := make(chan error, 1)
	go func() {
		_, err := c.Extended("1.2.3.4", nil)
		errCh <- err
	}()

	// The awaiting goroutine registers its FakeClock timer at some point
	// after the request hits the wire; keep advancing until it fires.
	deadline := time.Now().Add(10 * time.Second)
	for {
		select {
		case err := <-errCh:
			if err == nil || !strings.Contains(err.Error(), "timed out") {
				t.Fatalf("want timeout error, got %v", err)
			}
			goto timedOut
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("operation never timed out on the fake clock")
		}
		fc.Advance(c.Timeout)
		time.Sleep(time.Millisecond)
	}
timedOut:
	if n := c.pendingCount(); n != 0 {
		t.Fatalf("timed-out operation leaked %d pending entries", n)
	}
	if got := c.UnknownResponses.Value(); got != 0 {
		t.Fatalf("no unknown responses expected yet, counter at %d", got)
	}

	// Release the handler: the server's late response must be counted as
	// unknown, not delivered and not wedging the read loop.
	close(h.stall)
	for start := time.Now(); c.UnknownResponses.Value() == 0; {
		if time.Since(start) > 5*time.Second {
			t.Fatal("late response never counted as unknown")
		}
		time.Sleep(time.Millisecond)
	}

	// The connection must remain usable after the desync.
	c.Clock = softstate.RealClock{}
	if err := c.Bind("", ""); err != nil {
		t.Fatalf("connection unusable after late response: %v", err)
	}
}

// BenchmarkMessageEncode compares the direct emitter against the
// Packet-tree reference path on a representative streamed search entry.
func BenchmarkMessageEncode(b *testing.B) {
	m := &Message{ID: 6, Op: &SearchResultEntry{Entry: NewEntry(
		MustParseDN("queue=default, hn=hostX, ou=s0, o=grid")).
		Add("objectclass", "computer").
		Add("hn", "hostX").
		Add("system", "linux").
		Add("osversion", "6.1").
		Add("cpucount", "16").
		Add("load5", "0.42")}}
	b.Run("direct", func(b *testing.B) {
		b.ReportAllocs()
		var buf []byte
		for i := 0; i < b.N; i++ {
			buf = m.AppendTo(buf[:0])
		}
	})
	b.Run("tree", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.EncodeTree()
		}
	})
}

func ExampleMessage_AppendTo() {
	m := &Message{ID: 1, Op: &DelRequest{DN: "hn=hostX, o=grid"}}
	fmt.Println(bytes.Equal(m.AppendTo(nil), m.EncodeTree()))
	// Output: true
}
