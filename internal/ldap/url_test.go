package ldap

import "testing"

func TestParseURL(t *testing.T) {
	u, err := ParseURL("ldap://gris.example.org:2135/hn=hostX, o=grid")
	if err != nil {
		t.Fatal(err)
	}
	if u.Scheme != "ldap" || u.Host != "gris.example.org" || u.Port != "2135" {
		t.Errorf("parsed %+v", u)
	}
	if u.DN.String() != "hn=hostX, o=grid" {
		t.Errorf("dn = %q", u.DN)
	}
	if u.Address() != "gris.example.org:2135" {
		t.Errorf("address = %q", u.Address())
	}
}

func TestParseURLNoDN(t *testing.T) {
	for _, s := range []string{"ldap://host:389", "ldap://host:389/"} {
		u, err := ParseURL(s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if !u.DN.IsZero() {
			t.Errorf("%s: dn = %q", s, u.DN)
		}
	}
}

func TestParseURLNoPort(t *testing.T) {
	u, err := ParseURL("sim://node7/o=vo")
	if err != nil {
		t.Fatal(err)
	}
	if u.Host != "node7" || u.Port != "" || u.Scheme != "sim" {
		t.Errorf("parsed %+v", u)
	}
	if u.Address() != "node7" {
		t.Errorf("address = %q", u.Address())
	}
}

func TestURLStringRoundTrip(t *testing.T) {
	for _, s := range []string{
		"ldap://h:1/o=g",
		"ldap://h:1",
		"sim://node/hn=a, o=b",
	} {
		u := MustParseURL(s)
		back := MustParseURL(u.String())
		if back.String() != u.String() {
			t.Errorf("round trip %q -> %q", s, back)
		}
	}
}

func TestURLErrors(t *testing.T) {
	for _, bad := range []string{"", "nohost", "://x", "ldap:///o=g", "ldap://h/==bad"} {
		if _, err := ParseURL(bad); err == nil {
			t.Errorf("ParseURL(%q): expected error", bad)
		}
	}
}

func TestURLHelpers(t *testing.T) {
	u := MustParseURL("ldap://Host:389/o=g")
	v := u.WithDN(MustParseDN("hn=a, o=g"))
	if v.DN.String() != "hn=a, o=g" || u.DN.String() != "o=g" {
		t.Error("WithDN should not mutate the receiver")
	}
	if u.ServiceKey() != v.ServiceKey() {
		t.Error("ServiceKey should ignore DN")
	}
	if u.ServiceKey() != "ldap://host:389" {
		t.Errorf("ServiceKey = %q", u.ServiceKey())
	}
}
