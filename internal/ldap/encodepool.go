package ldap

import (
	"net"
	"sync"
	"time"

	"mds2/internal/obs"
	"mds2/internal/softstate"
)

// Outbound messages sit on every chained operation, cache hit, and streamed
// search entry, so the client and server share a per-connection coalescing
// writer: messages encode (direct emit, see emit.go) into one pending
// buffer, and consecutive messages drain to the socket in a single
// conn.Write. A streamed search of N entries costs O(N/batch) syscalls
// instead of N.

// maxPooledEncodeBuf bounds the buffers a connWriter recycles: an
// occasional huge search entry must not pin megabytes for the life of a
// connection.
const maxPooledEncodeBuf = 64 << 10

// flushThreshold drains the pending buffer even without an explicit flush,
// bounding both batch latency and buffer growth.
const flushThreshold = 16 << 10

// idleFlushDelay is how long buffered frames may wait for a batch to build
// before the idle tick pushes them out (covers providers that stall
// mid-stream, e.g. a GIIS waiting on a slow child).
const idleFlushDelay = 2 * time.Millisecond

// connWriter coalesces outbound LDAP messages onto one connection.
//
// Writers encode under mu and return; the actual syscall happens in
// whichever goroutine finds no drain in progress (the combining-writer
// pattern: the active drainer releases mu around conn.Write, then re-checks
// for frames enqueued meanwhile). Callers that just streamed a
// non-terminal message may leave bytes pending; the idle goroutine flushes
// them after idleFlushDelay on the injected clock.
type connWriter struct {
	conn  net.Conn
	clock softstate.Clock
	// batch, when non-nil, observes the byte size of every coalesced write
	// handed to the socket. Fixed at construction so drains from any
	// goroutine read it without synchronization.
	batch *obs.Histogram

	mu      sync.Mutex
	buf     []byte // encoded frames awaiting the wire
	spare   []byte // recycled drain buffer
	writing bool   // a goroutine is draining buf
	err     error  // sticky first write error

	wake chan struct{} // cap 1: tells the idle goroutine frames are pending
	done chan struct{} // closed by close: stops the idle goroutine
}

func newConnWriter(conn net.Conn, clock softstate.Clock, batch *obs.Histogram) *connWriter {
	if clock == nil {
		clock = softstate.RealClock{}
	}
	w := &connWriter{
		conn:  conn,
		clock: clock,
		batch: batch,
		wake:  make(chan struct{}, 1),
		done:  make(chan struct{}),
	}
	go w.idleLoop()
	return w
}

// enqueue encodes m onto the pending buffer. With flushNow (responses,
// done messages, anything latency-sensitive) or once the buffer passes
// flushThreshold, the buffer drains before returning — unless another
// goroutine is already draining, in which case that drain picks the new
// frames up and enqueue returns immediately. Write errors are sticky and
// surface on the current or a later call.
func (w *connWriter) enqueue(m *Message, flushNow bool) error {
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	w.buf = m.AppendTo(w.buf)
	if !flushNow && len(w.buf) < flushThreshold {
		w.mu.Unlock()
		w.signalIdle()
		return nil
	}
	err := w.drainLocked()
	w.mu.Unlock()
	return err
}

// flush drains any pending frames.
func (w *connWriter) flush() error {
	w.mu.Lock()
	err := w.drainLocked()
	w.mu.Unlock()
	return err
}

// drainLocked writes pending frames to the socket. Caller holds mu; the
// lock is released around each conn.Write so other writers keep encoding
// while the syscall is in flight, and re-checked afterwards to pick up
// frames they enqueued. At most one goroutine drains at a time; others
// return immediately and their frames ride the active drain.
func (w *connWriter) drainLocked() error {
	if w.writing {
		return w.err
	}
	w.writing = true
	for len(w.buf) > 0 && w.err == nil {
		buf := w.buf
		w.buf = w.spare[:0]
		w.spare = nil
		w.mu.Unlock()
		w.batch.ObserveValue(int64(len(buf))) // nil-safe no-op when unobserved
		_, err := w.conn.Write(buf)
		w.mu.Lock()
		if err != nil && w.err == nil {
			w.err = err
		}
		if cap(buf) <= maxPooledEncodeBuf {
			w.spare = buf[:0]
		}
	}
	w.writing = false
	return w.err
}

// signalIdle nudges the idle goroutine; called after releasing mu.
func (w *connWriter) signalIdle() {
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

// idleLoop is the flush-of-last-resort: once frames are pending it waits
// one idleFlushDelay beat (letting a batch accumulate) and drains whatever
// is buffered. It exits when close closes done.
func (w *connWriter) idleLoop() {
	for {
		select {
		case <-w.done:
			return
		case <-w.wake:
		}
		select {
		case <-w.done:
			return
		case <-w.clock.After(idleFlushDelay):
		}
		w.flush() // sticky error resurfaces on the next enqueue
	}
}

// close flushes pending frames and stops the idle goroutine. It does not
// close the connection; the owner does that.
func (w *connWriter) close() {
	w.flush()
	close(w.done)
}
