package ldap

import (
	"net"
	"sync"
)

// Message encoding sits on every chained operation, cache hit, and streamed
// search entry, so the client and server write paths share a pool of encode
// buffers instead of allocating wire bytes per message.

// maxPooledEncodeBuf bounds what goes back in the pool: an occasional huge
// search entry must not pin megabytes for the life of the process.
const maxPooledEncodeBuf = 64 << 10

var encodeBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 1024)
		return &b
	},
}

// writeMessage encodes m into a pooled buffer and writes it to conn as one
// frame, serialized by mu. The buffer is returned to the pool after the
// write completes; net.Conn implementations do not retain the slice.
func writeMessage(conn net.Conn, mu *sync.Mutex, m *Message) error {
	bp := encodeBufPool.Get().(*[]byte)
	b := m.AppendTo((*bp)[:0])
	mu.Lock()
	_, err := conn.Write(b)
	mu.Unlock()
	if cap(b) <= maxPooledEncodeBuf {
		*bp = b[:0]
	}
	encodeBufPool.Put(bp)
	return err
}
