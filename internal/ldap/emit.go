package ldap

import "mds2/internal/ber"

// This file is the direct-emit encode path: every Op serializes itself into
// a ber.Builder, so a full LDAPMessage reaches wire bytes without the
// intermediate Packet tree the encodeOp methods construct. The tree path is
// retained as the reference implementation (Message.EncodeTree) and
// TestEncodeDifferential pins the two byte-for-byte.

// AppendTo serializes the message envelope onto dst and returns the
// extended slice, letting the client and server write paths reuse pooled
// buffers instead of allocating per message.
func (m *Message) AppendTo(dst []byte) []byte {
	var b ber.Builder
	b.Reset(dst)
	b.Begin(ber.ClassUniversal, ber.TagSequence)
	b.Int(m.ID)
	m.Op.appendOp(&b)
	if len(m.Controls) > 0 {
		b.Begin(ber.ClassContext, 0)
		for _, c := range m.Controls {
			b.Begin(ber.ClassUniversal, ber.TagSequence)
			b.OctetString(c.OID)
			if c.Criticality {
				b.Bool(true)
			}
			if c.Value != nil {
				b.OctetStringBytes(c.Value)
			}
			b.End()
		}
		b.End()
	}
	b.End()
	return b.Bytes()
}

// appendDN emits d's canonical text rendering (identical to DN.String) as
// an OCTET STRING, without materializing the intermediate string.
func appendDN(b *ber.Builder, d DN) {
	b.BeginPrimitive(ber.ClassUniversal, ber.TagOctetString)
	for i, rdn := range d {
		if i > 0 {
			b.RawString(", ")
		}
		for j, ava := range rdn {
			if j > 0 {
				b.RawString("+")
			}
			b.RawString(escapeDNValue(ava.Attr))
			b.RawString("=")
			b.RawString(escapeDNValue(ava.Value))
		}
	}
	b.End()
}

// appendAttrList emits a PartialAttributeList: SEQUENCE OF SEQUENCE
// { type, SET OF value }.
func appendAttrList(b *ber.Builder, attrs []Attribute) {
	b.Begin(ber.ClassUniversal, ber.TagSequence)
	for _, a := range attrs {
		b.Begin(ber.ClassUniversal, ber.TagSequence)
		b.OctetString(a.Name)
		b.Begin(ber.ClassUniversal, ber.TagSet)
		for _, v := range a.Values {
			b.OctetString(v)
		}
		b.End()
		b.End()
	}
	b.End()
}

// beginResult opens an application-tagged LDAPResult and emits the common
// fields; the caller appends any trailing components and calls End.
func beginResult(b *ber.Builder, tag uint32, r Result) {
	b.Begin(ber.ClassApplication, tag)
	b.Enum(int64(r.Code))
	b.OctetString(r.MatchedDN)
	b.OctetString(r.Message)
	if len(r.Referrals) > 0 {
		b.Begin(ber.ClassContext, 3)
		for _, u := range r.Referrals {
			b.OctetString(u)
		}
		b.End()
	}
}

// appendFilter emits f in the RFC 4511 wire form (mirrors Filter.ToBER).
func appendFilter(b *ber.Builder, f *Filter) {
	switch f.Kind {
	case FilterAnd, FilterOr:
		b.Begin(ber.ClassContext, uint32(f.Kind))
		for _, sub := range f.Subs {
			appendFilter(b, sub)
		}
		b.End()
	case FilterNot:
		b.Begin(ber.ClassContext, uint32(FilterNot))
		appendFilter(b, f.Subs[0])
		b.End()
	case FilterPresent:
		b.ContextString(uint32(FilterPresent), f.Attr)
	case FilterSubstrings:
		b.Begin(ber.ClassContext, uint32(FilterSubstrings))
		b.OctetString(f.Attr)
		b.Begin(ber.ClassUniversal, ber.TagSequence)
		if f.Initial != "" {
			b.ContextString(0, f.Initial)
		}
		for _, a := range f.Any {
			b.ContextString(1, a)
		}
		if f.Final != "" {
			b.ContextString(2, f.Final)
		}
		b.End()
		b.End()
	default: // Equality, GE, LE, Approx: AttributeValueAssertion
		b.Begin(ber.ClassContext, uint32(f.Kind))
		b.OctetString(f.Attr)
		b.OctetString(f.Value)
		b.End()
	}
}

func (r *BindRequest) appendOp(b *ber.Builder) {
	b.Begin(ber.ClassApplication, appBindRequest)
	b.Int(r.Version)
	b.OctetString(r.Name)
	if r.SASLMech == "" {
		b.ContextString(0, r.Password)
	} else {
		b.Begin(ber.ClassContext, 3)
		b.OctetString(r.SASLMech)
		b.OctetStringBytes(r.SASLCreds)
		b.End()
	}
	b.End()
}

func (r *BindResponse) appendOp(b *ber.Builder) {
	beginResult(b, appBindResponse, r.Result)
	if r.ServerCreds != nil {
		b.Primitive(ber.ClassContext, 7, r.ServerCreds)
	}
	b.End()
}

func (*UnbindRequest) appendOp(b *ber.Builder) {
	b.Primitive(ber.ClassApplication, appUnbindRequest, nil)
}

func (s *SearchRequest) appendOp(b *ber.Builder) {
	b.Begin(ber.ClassApplication, appSearchRequest)
	b.OctetString(s.BaseDN)
	b.Enum(int64(s.Scope))
	b.Enum(s.DerefAlias)
	b.Int(s.SizeLimit)
	b.Int(s.TimeLimit)
	b.Bool(s.TypesOnly)
	filter := s.Filter
	if filter == nil {
		filter = Present("objectclass")
	}
	appendFilter(b, filter)
	b.Begin(ber.ClassUniversal, ber.TagSequence)
	for _, a := range s.Attributes {
		b.OctetString(a)
	}
	b.End()
	b.End()
}

func (s *SearchResultEntry) appendOp(b *ber.Builder) {
	b.Begin(ber.ClassApplication, appSearchEntry)
	appendDN(b, s.Entry.DN)
	appendAttrList(b, s.Entry.Attrs)
	b.End()
}

func (s *SearchResultReference) appendOp(b *ber.Builder) {
	b.Begin(ber.ClassApplication, appSearchReference)
	for _, u := range s.URLs {
		b.OctetString(u)
	}
	b.End()
}

func (s *SearchResultDone) appendOp(b *ber.Builder) {
	beginResult(b, appSearchDone, s.Result)
	b.End()
}

func (a *AddRequest) appendOp(b *ber.Builder) {
	b.Begin(ber.ClassApplication, appAddRequest)
	appendDN(b, a.Entry.DN)
	appendAttrList(b, a.Entry.Attrs)
	b.End()
}

func (a *AddResponse) appendOp(b *ber.Builder) {
	beginResult(b, appAddResponse, a.Result)
	b.End()
}

func (d *DelRequest) appendOp(b *ber.Builder) {
	b.PrimitiveString(ber.ClassApplication, appDelRequest, d.DN)
}

func (d *DelResponse) appendOp(b *ber.Builder) {
	beginResult(b, appDelResponse, d.Result)
	b.End()
}

func (m *ModifyRequest) appendOp(b *ber.Builder) {
	b.Begin(ber.ClassApplication, appModifyRequest)
	b.OctetString(m.DN)
	b.Begin(ber.ClassUniversal, ber.TagSequence)
	for _, ch := range m.Changes {
		b.Begin(ber.ClassUniversal, ber.TagSequence)
		b.Enum(ch.Op)
		b.Begin(ber.ClassUniversal, ber.TagSequence)
		b.OctetString(ch.Attr.Name)
		b.Begin(ber.ClassUniversal, ber.TagSet)
		for _, v := range ch.Attr.Values {
			b.OctetString(v)
		}
		b.End()
		b.End()
		b.End()
	}
	b.End()
	b.End()
}

func (m *ModifyResponse) appendOp(b *ber.Builder) {
	beginResult(b, appModifyResponse, m.Result)
	b.End()
}

func (a *AbandonRequest) appendOp(b *ber.Builder) {
	b.PrimitiveInt(ber.ClassApplication, appAbandonRequest, a.IDToAbandon)
}

func (e *ExtendedRequest) appendOp(b *ber.Builder) {
	b.Begin(ber.ClassApplication, appExtendedRequest)
	b.ContextString(0, e.OID)
	if e.Value != nil {
		b.Primitive(ber.ClassContext, 1, e.Value)
	}
	b.End()
}

func (e *ExtendedResponse) appendOp(b *ber.Builder) {
	beginResult(b, appExtendedResp, e.Result)
	if e.OID != "" {
		b.ContextString(10, e.OID)
	}
	if e.Value != nil {
		b.Primitive(ber.ClassContext, 11, e.Value)
	}
	b.End()
}
