package ldap

import (
	"net"
	"strings"
	"testing"
	"time"

	"mds2/internal/obs"
	"mds2/internal/softstate"
)

// startObsServer serves a populated Store with the given observability
// hookup (either may be nil) and returns a connected client.
func startObsServer(t testing.TB, reg *obs.Registry, tracer *obs.Tracer, entries int) *Client {
	t.Helper()
	store := NewStore()
	for i := 0; i < entries; i++ {
		dn := MustParseDN("o=grid").ChildAVA("hn", "h"+strings.Repeat("x", i%7))
		e := NewEntry(dn.ChildAVA("n", string(rune('a'+i%26)))).
			Add("objectclass", "computer").
			Add("load5", "0.5")
		res := store.Add(nil, &AddRequest{Entry: e})
		if res.Code != ResultSuccess && res.Code != ResultEntryAlreadyExists {
			t.Fatalf("seed add: %+v", res)
		}
	}
	srv := NewServer(store)
	srv.Obs = reg
	srv.Tracer = tracer
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestSearchTraceControl(t *testing.T) {
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(nil, 0)
	c := startObsServer(t, reg, tracer, 8)

	res, err := c.SearchWith(&SearchRequest{
		BaseDN: "o=grid", Scope: ScopeWholeSubtree,
		Filter: MustParseFilter("(objectclass=computer)"),
	}, []Control{NewTraceControl("", 0)})
	if err != nil {
		t.Fatal(err)
	}
	ex, ok := TraceSpans(res.DoneControls)
	if !ok {
		t.Fatalf("no trace-spans control in %+v", res.DoneControls)
	}
	if ex.Op != "search" || ex.ID == "" || ex.Depth != 0 {
		t.Errorf("export = %+v", ex)
	}
	names := map[string]bool{}
	for _, ch := range ex.Spans.Children {
		names[ch.Name] = true
	}
	if !names["queue"] || !names["encode+write"] {
		t.Errorf("span children missing: %+v", ex.Spans.Children)
	}
	// The server recorded the trace locally too.
	recent := tracer.Recent()
	if len(recent) != 1 || recent[0].ID != ex.ID {
		t.Errorf("recent = %+v", recent)
	}
	// And the per-op instruments moved.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"ldap_search_duration_ns_count", "ldap_inflight_ops", "ldap_write_batch_bytes_count"} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %s:\n%s", want, out)
		}
	}
}

// A server with no tracer still reports spans when the request asks for
// them: child hops of a traced chain run untraced servers all the time.
func TestUntracedServerReportsSpansOnRequest(t *testing.T) {
	c := startObsServer(t, nil, nil, 4)
	res, err := c.SearchWith(&SearchRequest{
		BaseDN: "o=grid", Scope: ScopeWholeSubtree,
		Filter: MustParseFilter("(objectclass=*)"),
	}, []Control{NewTraceControl("up-42", 1)})
	if err != nil {
		t.Fatal(err)
	}
	ex, ok := TraceSpans(res.DoneControls)
	if !ok {
		t.Fatal("no trace-spans control")
	}
	if ex.ID != "up-42" || ex.Depth != 1 {
		t.Errorf("export = %+v", ex)
	}
}

// Without the request control a traced server records locally but does not
// spend response bytes on spans.
func TestTracedServerOmitsSpansWithoutControl(t *testing.T) {
	tracer := obs.NewTracer(nil, 0)
	c := startObsServer(t, nil, tracer, 4)
	res, err := c.Search(&SearchRequest{
		BaseDN: "o=grid", Scope: ScopeWholeSubtree,
		Filter: MustParseFilter("(objectclass=*)"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := TraceSpans(res.DoneControls); ok {
		t.Error("spans control must not attach without the request control")
	}
	if len(tracer.Recent()) != 1 {
		t.Errorf("recent = %d", len(tracer.Recent()))
	}
}

// TestDisabledObsZeroAllocs pins the disabled-path contract: every
// instrument call the hot path makes against nil recorders allocates
// nothing.
func TestDisabledObsZeroAllocs(t *testing.T) {
	var c *obs.Counter
	var g *obs.Gauge
	var h *obs.Histogram
	var sp *obs.Span
	var tr *obs.Trace
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Inc()
		g.Dec()
		h.Observe(time.Millisecond)
		h.ObserveValue(512)
		child := sp.Child("backend")
		child.SetNote("hit")
		child.End()
		sp.AddTimed("encode+write", time.Millisecond, "")
		tr.Root().Child("queue").End()
		tr.Finish()
	})
	if allocs != 0 {
		t.Errorf("disabled obs path allocates %.1f per op, want 0", allocs)
	}
}

// BenchmarkObsDisabledOverhead measures a full streamed search over loopback
// with observability off and on; the disabled variant is the regression
// guard for "disabled means free" (compare ns/op and allocs/op).
func BenchmarkObsDisabledOverhead(b *testing.B) {
	run := func(b *testing.B, reg *obs.Registry, tracer *obs.Tracer) {
		c := startObsServer(b, reg, tracer, 16)
		req := &SearchRequest{
			BaseDN: "o=grid", Scope: ScopeWholeSubtree,
			Filter: MustParseFilter("(objectclass=computer)"),
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Search(req); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, nil, nil) })
	b.Run("enabled", func(b *testing.B) {
		run(b, obs.NewRegistry(), obs.NewTracer(softstate.RealClock{}, 0))
	})
}
