package ldap

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"mds2/internal/ber"
)

// FilterKind enumerates the RFC 4511 filter choices this implementation
// supports. The numeric values are the context tags used on the wire.
type FilterKind uint32

// Filter kinds, numbered as on the wire (RFC 4511 §4.5.1.7).
const (
	FilterAnd        FilterKind = 0
	FilterOr         FilterKind = 1
	FilterNot        FilterKind = 2
	FilterEquality   FilterKind = 3
	FilterSubstrings FilterKind = 4
	FilterGE         FilterKind = 5
	FilterLE         FilterKind = 6
	FilterPresent    FilterKind = 7
	FilterApprox     FilterKind = 8
)

// Filter is a parsed search filter. Exactly the fields relevant to Kind are
// populated: Subs for And/Or (and Subs[0] for Not), Attr for all item kinds,
// Value for Equality/GE/LE/Approx, and the substring parts for Substrings.
type Filter struct {
	Kind  FilterKind
	Subs  []*Filter // And, Or: 1..n; Not: exactly 1
	Attr  string
	Value string
	// Substring components: Initial and Final are optional, Any may hold
	// zero or more middle fragments. At least one component is present.
	Initial string
	Any     []string
	Final   string
}

// ErrBadFilter reports a filter string that does not satisfy RFC 4515.
var ErrBadFilter = errors.New("ldap: malformed filter")

// Convenience constructors used pervasively by providers and directories.

// Eq returns an equality filter (attr=value).
func Eq(attr, value string) *Filter {
	return &Filter{Kind: FilterEquality, Attr: attr, Value: value}
}

// Present returns a presence filter (attr=*).
func Present(attr string) *Filter { return &Filter{Kind: FilterPresent, Attr: attr} }

// And returns the conjunction of subfilters.
func And(subs ...*Filter) *Filter { return &Filter{Kind: FilterAnd, Subs: subs} }

// Or returns the disjunction of subfilters.
func Or(subs ...*Filter) *Filter { return &Filter{Kind: FilterOr, Subs: subs} }

// Not returns the negation of sub.
func Not(sub *Filter) *Filter { return &Filter{Kind: FilterNot, Subs: []*Filter{sub}} }

// GE returns a greater-or-equal filter (attr>=value).
func GE(attr, value string) *Filter { return &Filter{Kind: FilterGE, Attr: attr, Value: value} }

// LE returns a less-or-equal filter (attr<=value).
func LE(attr, value string) *Filter { return &Filter{Kind: FilterLE, Attr: attr, Value: value} }

// ParseFilter parses an RFC 4515 string filter such as
// "(&(objectclass=computer)(freecpus>=8))". As a convenience an unwrapped
// simple item like "cn=foo" is also accepted.
func ParseFilter(s string) (*Filter, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("%w: empty", ErrBadFilter)
	}
	if !strings.HasPrefix(s, "(") {
		s = "(" + s + ")"
	}
	p := &filterParser{in: s}
	f, err := p.parse()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.in) {
		return nil, fmt.Errorf("%w: trailing %q", ErrBadFilter, p.in[p.pos:])
	}
	return f, nil
}

// MustParseFilter parses s and panics on error; for tests and static config.
func MustParseFilter(s string) *Filter {
	f, err := ParseFilter(s)
	if err != nil {
		panic(err)
	}
	return f
}

type filterParser struct {
	in  string
	pos int
}

func (p *filterParser) parse() (*Filter, error) {
	if err := p.expect('('); err != nil {
		return nil, err
	}
	if p.pos >= len(p.in) {
		return nil, fmt.Errorf("%w: unexpected end", ErrBadFilter)
	}
	var f *Filter
	var err error
	switch p.in[p.pos] {
	case '&':
		p.pos++
		f, err = p.parseList(FilterAnd)
	case '|':
		p.pos++
		f, err = p.parseList(FilterOr)
	case '!':
		p.pos++
		var sub *Filter
		sub, err = p.parse()
		if err == nil {
			f = Not(sub)
		}
	default:
		f, err = p.parseItem()
	}
	if err != nil {
		return nil, err
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	return f, nil
}

func (p *filterParser) parseList(kind FilterKind) (*Filter, error) {
	f := &Filter{Kind: kind}
	for p.pos < len(p.in) && p.in[p.pos] == '(' {
		sub, err := p.parse()
		if err != nil {
			return nil, err
		}
		f.Subs = append(f.Subs, sub)
	}
	if len(f.Subs) == 0 {
		return nil, fmt.Errorf("%w: empty %v list", ErrBadFilter, kind)
	}
	return f, nil
}

func (p *filterParser) parseItem() (*Filter, error) {
	// attr [~ | > | <] = value
	start := p.pos
	for p.pos < len(p.in) && !strings.ContainsRune("=~<>()", rune(p.in[p.pos])) {
		p.pos++
	}
	attr := strings.TrimSpace(p.in[start:p.pos])
	if attr == "" || p.pos >= len(p.in) {
		return nil, fmt.Errorf("%w: bad item at %d", ErrBadFilter, start)
	}
	kind := FilterEquality
	switch p.in[p.pos] {
	case '~':
		kind = FilterApprox
		p.pos++
	case '>':
		kind = FilterGE
		p.pos++
	case '<':
		kind = FilterLE
		p.pos++
	}
	if err := p.expect('='); err != nil {
		return nil, err
	}
	vstart := p.pos
	for p.pos < len(p.in) && p.in[p.pos] != ')' {
		if p.in[p.pos] == '\\' {
			if p.pos+1 >= len(p.in) {
				return nil, fmt.Errorf("%w: dangling escape at %d", ErrBadFilter, p.pos)
			}
			p.pos++
		}
		p.pos++
	}
	raw := p.in[vstart:p.pos]
	if kind != FilterEquality {
		return &Filter{Kind: kind, Attr: attr, Value: unescapeFilterValue(raw)}, nil
	}
	// Equality with '*' in the value is presence or substrings.
	if raw == "*" {
		return Present(attr), nil
	}
	if containsUnescapedStar(raw) {
		return parseSubstrings(attr, raw)
	}
	return Eq(attr, unescapeFilterValue(raw)), nil
}

func (p *filterParser) expect(c byte) error {
	if p.pos >= len(p.in) || p.in[p.pos] != c {
		return fmt.Errorf("%w: expected %q at offset %d", ErrBadFilter, string(c), p.pos)
	}
	p.pos++
	return nil
}

func containsUnescapedStar(s string) bool {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '*':
			return true
		}
	}
	return false
}

func parseSubstrings(attr, raw string) (*Filter, error) {
	var parts []string
	var cur strings.Builder
	for i := 0; i < len(raw); i++ {
		c := raw[i]
		switch c {
		case '\\':
			if i+1 < len(raw) {
				i++
				cur.WriteByte(raw[i])
			}
		case '*':
			parts = append(parts, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	parts = append(parts, cur.String())
	// parts = initial, any..., final; stars are the separators.
	f := &Filter{Kind: FilterSubstrings, Attr: attr, Initial: parts[0], Final: parts[len(parts)-1]}
	for _, mid := range parts[1 : len(parts)-1] {
		if mid != "" {
			f.Any = append(f.Any, mid)
		}
	}
	if f.Initial == "" && f.Final == "" && len(f.Any) == 0 {
		return nil, fmt.Errorf("%w: substring filter with no components", ErrBadFilter)
	}
	return f, nil
}

func unescapeFilterValue(v string) string {
	if !strings.ContainsRune(v, '\\') {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		if v[i] == '\\' && i+1 < len(v) {
			i++
			// RFC 4515 uses \XX hex escapes; accept those too.
			if i+1 < len(v) && isHex(v[i]) && isHex(v[i+1]) {
				n, err := strconv.ParseUint(v[i:i+2], 16, 8)
				if err == nil {
					b.WriteByte(byte(n))
					i++
					continue
				}
			}
		}
		b.WriteByte(v[i])
	}
	return b.String()
}

func isHex(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

func escapeFilterValue(v string) string {
	if !strings.ContainsAny(v, `*()\`) {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '*', '(', ')', '\\':
			b.WriteByte('\\')
		}
		b.WriteByte(v[i])
	}
	return b.String()
}

// String renders the filter back in RFC 4515 notation.
func (f *Filter) String() string {
	var b strings.Builder
	f.write(&b)
	return b.String()
}

func (f *Filter) write(b *strings.Builder) {
	b.WriteByte('(')
	switch f.Kind {
	case FilterAnd, FilterOr:
		if f.Kind == FilterAnd {
			b.WriteByte('&')
		} else {
			b.WriteByte('|')
		}
		for _, sub := range f.Subs {
			sub.write(b)
		}
	case FilterNot:
		b.WriteByte('!')
		f.Subs[0].write(b)
	case FilterEquality:
		b.WriteString(f.Attr + "=" + escapeFilterValue(f.Value))
	case FilterApprox:
		b.WriteString(f.Attr + "~=" + escapeFilterValue(f.Value))
	case FilterGE:
		b.WriteString(f.Attr + ">=" + escapeFilterValue(f.Value))
	case FilterLE:
		b.WriteString(f.Attr + "<=" + escapeFilterValue(f.Value))
	case FilterPresent:
		b.WriteString(f.Attr + "=*")
	case FilterSubstrings:
		b.WriteString(f.Attr + "=" + escapeFilterValue(f.Initial) + "*")
		for _, a := range f.Any {
			b.WriteString(escapeFilterValue(a) + "*")
		}
		b.WriteString(escapeFilterValue(f.Final))
	}
	b.WriteByte(')')
}

// Matches evaluates the filter against an entry. Ordering comparisons
// (>=, <=) compare numerically when both sides parse as numbers and fall
// back to case-folded string order otherwise, which is how MDS providers
// publish load averages and capacities as strings.
func (f *Filter) Matches(e *Entry) bool {
	switch f.Kind {
	case FilterAnd:
		for _, sub := range f.Subs {
			if !sub.Matches(e) {
				return false
			}
		}
		return true
	case FilterOr:
		for _, sub := range f.Subs {
			if sub.Matches(e) {
				return true
			}
		}
		return false
	case FilterNot:
		return !f.Subs[0].Matches(e)
	case FilterPresent:
		return e.Has(f.Attr)
	case FilterEquality:
		return e.HasValue(f.Attr, f.Value)
	case FilterApprox:
		// Approximate match: case-insensitive equality ignoring interior
		// whitespace — a deliberately simple stand-in for soundex-style
		// matching that is deterministic for tests.
		for _, v := range e.Values(f.Attr) {
			if squashFoldEqual(v, f.Value) {
				return true
			}
		}
		return false
	case FilterGE:
		for _, v := range e.Values(f.Attr) {
			if orderCompare(v, f.Value) >= 0 {
				return true
			}
		}
		return false
	case FilterLE:
		for _, v := range e.Values(f.Attr) {
			if orderCompare(v, f.Value) <= 0 {
				return true
			}
		}
		return false
	case FilterSubstrings:
		for _, v := range e.Values(f.Attr) {
			if f.matchSubstring(v) {
				return true
			}
		}
		return false
	}
	return false
}

func (f *Filter) matchSubstring(v string) bool {
	return matchSubstringFold(v, f.Initial, f.Any, f.Final)
}

// matchSubstringFold anchors initial at the start, locates each middle
// fragment left to right, and anchors final at the end, all under
// allocation-free case folding. It is the single substring-match
// implementation shared by compiled and uncompiled evaluation.
func matchSubstringFold(v, initial string, any []string, final string) bool {
	if initial != "" {
		n := foldConsume(v, initial)
		if n < 0 {
			return false
		}
		v = v[n:]
	}
	for _, a := range any {
		n := foldSkipPast(v, a)
		if n < 0 {
			return false
		}
		v = v[n:]
	}
	if final != "" {
		return foldHasSuffix(v, final)
	}
	return true
}

func orderCompare(a, b string) int {
	if looksNumeric(a) && looksNumeric(b) {
		fa, errA := strconv.ParseFloat(strings.TrimSpace(a), 64)
		fb, errB := strconv.ParseFloat(strings.TrimSpace(b), 64)
		if errA == nil && errB == nil {
			switch {
			case fa < fb:
				return -1
			case fa > fb:
				return 1
			}
			return 0
		}
	}
	return foldCompare(a, b)
}

// Attributes returns the set of attribute names the filter references, used
// by GRIS to prune dispatch to providers whose namespace cannot intersect
// the query.
func (f *Filter) Attributes() []string {
	seen := map[string]bool{}
	var out []string
	var walk func(*Filter)
	walk = func(g *Filter) {
		switch g.Kind {
		case FilterAnd, FilterOr, FilterNot:
			for _, sub := range g.Subs {
				walk(sub)
			}
		default:
			key := strings.ToLower(g.Attr)
			if !seen[key] {
				seen[key] = true
				out = append(out, key)
			}
		}
	}
	walk(f)
	return out
}

// ToBER encodes the filter in the RFC 4511 wire form.
func (f *Filter) ToBER() *ber.Packet {
	switch f.Kind {
	case FilterAnd, FilterOr:
		p := ber.NewConstructed(ber.ClassContext, uint32(f.Kind))
		for _, sub := range f.Subs {
			p.Append(sub.ToBER())
		}
		return p
	case FilterNot:
		return ber.NewConstructed(ber.ClassContext, uint32(FilterNot)).Append(f.Subs[0].ToBER())
	case FilterPresent:
		return &ber.Packet{Class: ber.ClassContext, Tag: uint32(FilterPresent), Value: []byte(f.Attr)}
	case FilterSubstrings:
		subs := ber.NewSequence()
		if f.Initial != "" {
			subs.Append(ber.NewContextString(0, f.Initial))
		}
		for _, a := range f.Any {
			subs.Append(ber.NewContextString(1, a))
		}
		if f.Final != "" {
			subs.Append(ber.NewContextString(2, f.Final))
		}
		return ber.NewConstructed(ber.ClassContext, uint32(FilterSubstrings)).Append(
			ber.NewOctetString(f.Attr), subs)
	default: // Equality, GE, LE, Approx: AttributeValueAssertion
		return ber.NewConstructed(ber.ClassContext, uint32(f.Kind)).Append(
			ber.NewOctetString(f.Attr), ber.NewOctetString(f.Value))
	}
}

// FilterFromBER decodes the RFC 4511 wire form of a filter.
func FilterFromBER(p *ber.Packet) (*Filter, error) {
	if p == nil || p.Class != ber.ClassContext {
		return nil, fmt.Errorf("%w: not a context-tagged filter: %s", ErrBadFilter, p)
	}
	kind := FilterKind(p.Tag)
	switch kind {
	case FilterAnd, FilterOr:
		if len(p.Children) == 0 {
			return nil, fmt.Errorf("%w: empty set filter", ErrBadFilter)
		}
		f := &Filter{Kind: kind}
		for _, c := range p.Children {
			sub, err := FilterFromBER(c)
			if err != nil {
				return nil, err
			}
			f.Subs = append(f.Subs, sub)
		}
		return f, nil
	case FilterNot:
		if len(p.Children) != 1 {
			return nil, fmt.Errorf("%w: NOT arity %d", ErrBadFilter, len(p.Children))
		}
		sub, err := FilterFromBER(p.Children[0])
		if err != nil {
			return nil, err
		}
		return Not(sub), nil
	case FilterPresent:
		if p.Constructed {
			return nil, fmt.Errorf("%w: constructed presence filter", ErrBadFilter)
		}
		return Present(p.Str()), nil
	case FilterSubstrings:
		if len(p.Children) != 2 || p.Children[1].Tag != ber.TagSequence {
			return nil, fmt.Errorf("%w: bad substrings shape", ErrBadFilter)
		}
		f := &Filter{Kind: kind, Attr: p.Children[0].Str()}
		for _, c := range p.Children[1].Children {
			switch c.Tag {
			case 0:
				f.Initial = c.Str()
			case 1:
				f.Any = append(f.Any, c.Str())
			case 2:
				f.Final = c.Str()
			default:
				return nil, fmt.Errorf("%w: substring tag %d", ErrBadFilter, c.Tag)
			}
		}
		if f.Initial == "" && f.Final == "" && len(f.Any) == 0 {
			return nil, fmt.Errorf("%w: empty substrings", ErrBadFilter)
		}
		return f, nil
	case FilterEquality, FilterGE, FilterLE, FilterApprox:
		if len(p.Children) != 2 {
			return nil, fmt.Errorf("%w: AVA arity %d", ErrBadFilter, len(p.Children))
		}
		return &Filter{Kind: kind, Attr: p.Children[0].Str(), Value: p.Children[1].Str()}, nil
	}
	return nil, fmt.Errorf("%w: unknown filter tag %d", ErrBadFilter, p.Tag)
}
