package ldap

import (
	"errors"
	"sync"
	"time"

	"mds2/internal/softstate"
)

// OverloadConfig bounds the work a Server accepts so that saturation
// degrades into explicit, fast rejections instead of unbounded queue
// growth. The MDS2 performance studies (Zhang/Freschl/Schopf) show exactly
// that collapse: past the saturation point, response time grows without
// bound because every arriving query joins an ever-longer queue. With
// overload control the server admits at most MaxWorkers concurrent
// operations, queues a bounded backlog behind them, and sheds everything
// else with LDAP busy/unavailable so clients get a cheap, honest signal.
//
// The zero value disables every mechanism (the pre-existing behavior:
// one goroutine per operation, no limits).
type OverloadConfig struct {
	// MaxWorkers caps concurrently dispatched operations. 0 disables
	// admission control entirely (no queue, no shedding).
	MaxWorkers int
	// MaxQueue caps operations waiting behind the worker set. An arrival
	// finding the queue full is shed with ResultUnavailable. 0 means no
	// waiting: anything beyond MaxWorkers is shed immediately.
	MaxQueue int
	// QueueBudget sheds an arrival with ResultBusy when its projected
	// queue wait — (queued+1) × EWMA service time / MaxWorkers, the same
	// quantity the per-op queue-wait span measures after the fact —
	// already exceeds this budget. 0 disables budget-based shedding
	// (only MaxQueue bounds the backlog).
	QueueBudget time.Duration
	// ClientRate limits each client (keyed by remote host) to this many
	// admitted operations per second, enforced by a token bucket.
	// Operations over the rate are shed with ResultBusy. 0 disables
	// per-client throttling.
	ClientRate float64
	// ClientBurst is the token-bucket capacity; 0 defaults to
	// max(1, ClientRate).
	ClientBurst int
	// MaxConns bounds concurrently served connections. When at the
	// limit the accept loop stops accepting — backpressure surfaces to
	// clients as TCP backlog/connect latency rather than an open
	// connection that is never served. 0 means unlimited.
	MaxConns int
}

// enabled reports whether the admission queue is active.
func (c OverloadConfig) enabled() bool { return c.MaxWorkers > 0 }

// Shed reasons, exported for tests and observability.
var (
	// ErrShedQueueFull is returned when the admission queue is at MaxQueue.
	ErrShedQueueFull = errors.New("ldap: admission queue full")
	// ErrShedBudget is returned when the projected queue wait exceeds
	// QueueBudget.
	ErrShedBudget = errors.New("ldap: projected queue wait exceeds budget")
	// ErrAdmissionClosed is returned to waiters drained by Close.
	ErrAdmissionClosed = errors.New("ldap: admission closed")
)

// admission implements the server's overload control: a counting worker
// semaphore with an explicit FIFO wait queue (explicit so release order is
// deterministic and fairness is testable), an EWMA of observed service
// time driving the shed-on-projected-wait decision, and per-client token
// buckets.
type admission struct {
	cfg   OverloadConfig
	clock softstate.Clock
	inst  *serverInstruments

	mu       sync.Mutex
	inflight int
	queue    []*admitTicket // FIFO; cancelled tickets are skipped at release
	closed   bool
	// ewmaNs is the exponentially weighted moving average of observed
	// service times (α = 1/8), the signal behind projected queue wait.
	ewmaNs int64

	bucketMu sync.Mutex
	buckets  map[string]*tokenBucket
}

// admitTicket is one arrival's place in line. All state transitions happen
// under admission.mu so a cancel racing a grant resolves deterministically:
// whichever moves the ticket out of ticketWaiting first wins, and the loser
// sees the new state. granted is buffered so the releaser can hand over the
// slot after dropping mu without ever blocking.
type admitTicket struct {
	granted  chan error
	state    ticketState // guarded by admission.mu
	enqueued time.Time
}

type ticketState int

const (
	ticketWaiting ticketState = iota
	ticketGranted             // releaser committed to sending on granted
	ticketCancelled
)

type tokenBucket struct {
	tokens float64
	last   time.Time
}

func newAdmission(cfg OverloadConfig, clock softstate.Clock, inst *serverInstruments) *admission {
	if clock == nil {
		clock = softstate.RealClock{}
	}
	if inst == nil {
		inst = &serverInstruments{} // nil instruments are no-op recorders
	}
	return &admission{cfg: cfg, clock: clock, inst: inst,
		buckets: map[string]*tokenBucket{}}
}

// throttled consumes one token from host's bucket, returning true (shed)
// when the bucket is empty. Buckets refill continuously at ClientRate up to
// ClientBurst.
func (a *admission) throttled(host string) bool {
	if a == nil || a.cfg.ClientRate <= 0 {
		return false
	}
	burst := float64(a.cfg.ClientBurst)
	if burst < 1 {
		burst = a.cfg.ClientRate
		if burst < 1 {
			burst = 1
		}
	}
	now := a.clock.Now()
	a.bucketMu.Lock()
	b := a.buckets[host]
	if b == nil {
		// A sustained storm from many distinct hosts would otherwise grow
		// the map without bound; recycle full (hence inert) buckets first.
		if len(a.buckets) >= 4096 {
			for k, old := range a.buckets {
				if now.Sub(old.last).Seconds()*a.cfg.ClientRate+old.tokens >= burst {
					delete(a.buckets, k)
				}
			}
		}
		b = &tokenBucket{tokens: burst, last: now}
		a.buckets[host] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * a.cfg.ClientRate
	if b.tokens > burst {
		b.tokens = burst
	}
	b.last = now
	ok := b.tokens >= 1
	if ok {
		b.tokens--
	}
	a.bucketMu.Unlock()
	if !ok {
		a.inst.throttled.Inc()
	}
	return !ok
}

// tryAcquire is the synchronous admission decision, taken on the
// connection's read loop so it must never block. It returns:
//
//   - (nil, nil): admitted immediately — a worker slot is held.
//   - (ticket, nil): queued — the caller must wait on the ticket before
//     dispatching, off the read loop.
//   - (nil, err): shed — err says why (ErrShedQueueFull, ErrShedBudget).
func (a *admission) tryAcquire() (*admitTicket, error) {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil, ErrAdmissionClosed
	}
	if a.inflight < a.cfg.MaxWorkers {
		a.inflight++
		a.mu.Unlock()
		return nil, nil
	}
	queued := len(a.queue)
	if queued >= a.cfg.MaxQueue {
		a.mu.Unlock()
		a.inst.shedUnavailable.Inc()
		return nil, ErrShedQueueFull
	}
	if a.cfg.QueueBudget > 0 {
		projected := time.Duration((int64(queued) + 1) * a.ewmaNs / int64(a.cfg.MaxWorkers))
		if projected > a.cfg.QueueBudget {
			a.mu.Unlock()
			a.inst.shedBusy.Inc()
			return nil, ErrShedBudget
		}
	}
	t := &admitTicket{granted: make(chan error, 1), enqueued: a.clock.Now()}
	a.queue = append(a.queue, t)
	depth := len(a.queue)
	a.mu.Unlock()
	a.inst.queueDepth.Set(int64(depth))
	return t, nil
}

// wait blocks until the ticket is granted a worker slot, the op context is
// cancelled, or the admission is closed. On success the observed queue wait
// feeds the queue-wait histogram — the measured counterpart of the
// projection tryAcquire sheds on.
func (t *admitTicket) wait(a *admission, done <-chan struct{}) error {
	select {
	case err := <-t.granted:
		if err == nil {
			a.inst.queueWait.Observe(a.clock.Now().Sub(t.enqueued))
		}
		return err
	case <-done:
		a.mu.Lock()
		wasGranted := t.state == ticketGranted
		if !wasGranted {
			t.state = ticketCancelled
		}
		a.mu.Unlock()
		if wasGranted {
			// The releaser committed the slot to us before we cancelled; the
			// buffered send is imminent (or already delivered). Collect it
			// and give the slot back, or it leaks.
			if err := <-t.granted; err == nil {
				a.release(0)
			}
		}
		return errors.New("ldap: operation cancelled while queued")
	}
}

// release returns a worker slot, handing it to the first live waiter if
// any, and folds the completed operation's service time into the EWMA
// (service 0 means "no observation": cancelled while queued).
func (a *admission) release(service time.Duration) {
	var grant *admitTicket
	a.mu.Lock()
	if service > 0 {
		if a.ewmaNs == 0 {
			a.ewmaNs = int64(service)
		} else {
			a.ewmaNs += (int64(service) - a.ewmaNs) / 8
		}
	}
	for len(a.queue) > 0 {
		t := a.queue[0]
		a.queue[0] = nil
		a.queue = a.queue[1:]
		if t.state == ticketWaiting {
			t.state = ticketGranted
			grant = t
			break
		}
	}
	if grant == nil {
		a.inflight--
	}
	depth := len(a.queue)
	a.mu.Unlock()
	a.inst.queueDepth.Set(int64(depth))
	if grant != nil {
		grant.granted <- nil // buffered: never blocks
	}
}

// ewma returns the current service-time estimate (test hook).
func (a *admission) ewma() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	return time.Duration(a.ewmaNs)
}

// seedEWMA installs a service-time estimate directly (test hook: budget
// shedding needs an estimate before any operation has completed).
func (a *admission) seedEWMA(d time.Duration) {
	a.mu.Lock()
	a.ewmaNs = int64(d)
	a.mu.Unlock()
}

// close drains the wait queue, failing every queued ticket with
// ErrAdmissionClosed; subsequent tryAcquire calls shed immediately.
func (a *admission) close() {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.closed = true
	drained := a.queue
	a.queue = nil
	var failed []*admitTicket
	for _, t := range drained {
		if t.state == ticketWaiting {
			t.state = ticketGranted // commits the buffered send below
			failed = append(failed, t)
		}
	}
	a.mu.Unlock()
	a.inst.queueDepth.Set(0)
	for _, t := range failed {
		t.granted <- ErrAdmissionClosed // buffered: never blocks
	}
}

// shedResult builds the LDAPResult for a shed operation.
func shedResult(err error) Result {
	switch err {
	case ErrShedQueueFull:
		return Result{Code: ResultUnavailable, Message: "server overloaded: admission queue full"}
	case ErrShedBudget:
		return Result{Code: ResultBusy, Message: "server overloaded: projected queue wait exceeds budget"}
	case ErrAdmissionClosed:
		return Result{Code: ResultUnavailable, Message: "server shutting down"}
	}
	return Result{Code: ResultBusy, Message: "client rate limit exceeded"}
}

// shedReply wraps a shed Result in the response operation matching the
// request, or nil for operations that have no response to carry it.
func shedReply(op Op, r Result) Op {
	switch op.(type) {
	case *SearchRequest:
		return &SearchResultDone{Result: r}
	case *AddRequest:
		return &AddResponse{Result: r}
	case *DelRequest:
		return &DelResponse{Result: r}
	case *ModifyRequest:
		return &ModifyResponse{Result: r}
	case *ExtendedRequest:
		return &ExtendedResponse{Result: r}
	case *BindRequest:
		return &BindResponse{Result: r}
	}
	return nil
}

// clientHost extracts the per-client throttling key from a remote address:
// the host portion, so every connection from one client shares a bucket.
func clientHost(addr string) string {
	for i := len(addr) - 1; i >= 0; i-- {
		switch addr[i] {
		case ':':
			return addr[:i]
		case ']': // IPv6 literal with no port
			return addr
		}
	}
	return addr
}
