package history

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"mds2/internal/gris"
	"mds2/internal/hostinfo"
	"mds2/internal/ldap"
	"mds2/internal/providers"
	"mds2/internal/softstate"
)

var h0 = time.Date(2001, 6, 1, 0, 0, 0, 0, time.UTC)

func loadDN() ldap.DN { return ldap.MustParseDN("perf=load, hn=h, o=g") }

func TestRecordAndQueryRange(t *testing.T) {
	a := NewArchive()
	for i := 0; i < 10; i++ {
		a.Record(loadDN(), "load5", h0.Add(time.Duration(i)*time.Minute), float64(i))
	}
	got := a.Query(loadDN(), "LOAD5", h0.Add(2*time.Minute), h0.Add(5*time.Minute))
	if len(got) != 4 {
		t.Fatalf("range = %d samples", len(got))
	}
	if got[0].Value != 2 || got[3].Value != 5 {
		t.Fatalf("range values = %v", got)
	}
	// Out-of-range and unknown series are empty.
	if got := a.Query(loadDN(), "load5", h0.Add(time.Hour), h0.Add(2*time.Hour)); len(got) != 0 {
		t.Fatalf("future range = %v", got)
	}
	if got := a.Query(ldap.MustParseDN("x=1"), "load5", h0, h0.Add(time.Hour)); len(got) != 0 {
		t.Fatalf("unknown series = %v", got)
	}
}

func TestBoundedRetention(t *testing.T) {
	a := NewArchive()
	a.MaxSamples = 16
	for i := 0; i < 100; i++ {
		a.Record(loadDN(), "load5", h0.Add(time.Duration(i)*time.Second), float64(i))
	}
	got := a.Query(loadDN(), "load5", h0, h0.Add(time.Hour))
	if len(got) != 16 {
		t.Fatalf("retained = %d", len(got))
	}
	if got[0].Value != 84 || got[15].Value != 99 {
		t.Fatalf("oldest retained = %v, newest = %v", got[0], got[15])
	}
}

func TestRecordEntrySkipsNonNumeric(t *testing.T) {
	a := NewArchive()
	e := ldap.NewEntry(loadDN()).
		Add("objectclass", "loadaverage").
		Add("perf", "load").
		Add("load5", "2.5").
		Add("freecpus", "3")
	a.RecordEntry(e, h0)
	if got := a.Query(loadDN(), "load5", h0, h0); len(got) != 1 || got[0].Value != 2.5 {
		t.Fatalf("load5 = %v", got)
	}
	if got := a.Query(loadDN(), "freecpus", h0, h0); len(got) != 1 {
		t.Fatalf("freecpus = %v", got)
	}
	// Non-numeric ("perf: load") and objectclass are not recorded.
	series := a.Series()
	if len(series) != 2 {
		t.Fatalf("series = %v", series)
	}
}

func TestAggregate(t *testing.T) {
	a := NewArchive()
	for i, v := range []float64{4, 1, 9, 2} {
		a.Record(loadDN(), "load5", h0.Add(time.Duration(i)*time.Minute), v)
	}
	st, ok := a.Aggregate(loadDN(), "load5", h0, h0.Add(time.Hour))
	if !ok || st.Count != 4 || st.Min != 1 || st.Max != 9 || st.Mean != 4 {
		t.Fatalf("stats = %+v, %v", st, ok)
	}
	if _, ok := a.Aggregate(loadDN(), "ghost", h0, h0.Add(time.Hour)); ok {
		t.Fatal("empty aggregate should report !ok")
	}
}

func TestRecorderLoop(t *testing.T) {
	clock := softstate.NewFakeClock()
	host := hostinfo.New("h", hostinfo.Spec{OS: "linux", OSVer: "1", CPUType: "ia32",
		CPUCount: 4, MemoryMB: 1024}, 5)
	suffix := ldap.MustParseDN("hn=h, o=g")
	backend := &providers.DynamicHost{Host: host, Base: suffix}
	a := NewArchive()
	r := NewRecorder(a, backend, time.Minute, clock)
	r.Start()
	defer r.Stop()
	waitFor(t, func() bool {
		return len(a.Query(suffix.ChildAVA("perf", "load"), "load5", h0, h0.Add(100*time.Hour))) >= 1
	})
	for i := 0; i < 5; i++ {
		host.Step(time.Minute)
		clock.Advance(time.Minute)
		time.Sleep(3 * time.Millisecond)
	}
	samples := a.Query(suffix.ChildAVA("perf", "load"), "load5", h0, h0.Add(100*time.Hour))
	if len(samples) < 5 {
		t.Fatalf("samples = %d", len(samples))
	}
	r.Stop() // idempotent with deferred Stop
}

func TestExtensionSamplesAndStats(t *testing.T) {
	a := NewArchive()
	for i := 0; i < 5; i++ {
		a.Record(loadDN(), "load5", h0.Add(time.Duration(i)*time.Minute), float64(i))
	}
	ext := Extension(a)
	req := fmt.Sprintf("dn: %s\nattr: load5\nfrom: %s\nto: %s\nop: samples\n",
		loadDN(), h0.Format(time.RFC3339), h0.Add(2*time.Minute).Format(time.RFC3339))
	out, err := ext(nil, []byte(req))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	if len(lines) != 3 {
		t.Fatalf("sample lines = %v", lines)
	}
	if !strings.HasSuffix(lines[2], " 2") {
		t.Fatalf("last line = %q", lines[2])
	}
	statsReq := fmt.Sprintf("dn: %s\nattr: load5\nop: stats\n", loadDN())
	out, err = ext(nil, []byte(statsReq))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "count=5") || !strings.Contains(string(out), "max=4") {
		t.Fatalf("stats = %q", out)
	}
}

func TestExtensionErrors(t *testing.T) {
	ext := Extension(NewArchive())
	cases := []string{
		"",                         // missing dn/attr
		"dn: x=1\n",                // missing attr
		"dn: x=1\nattr: a\nop: ??", // bad op
		"garbage line\n",
		"dn: ===\nattr: a\n",
		"dn: x=1\nattr: a\nfrom: yesterday\n",
	}
	for _, c := range cases {
		if _, err := ext(nil, []byte(c)); err == nil {
			t.Errorf("request %q: expected error", c)
		}
	}
	// Empty result is not an error.
	out, err := ext(nil, []byte("dn: x=1\nattr: a\nop: stats\n"))
	if err != nil || !strings.Contains(string(out), "count=0") {
		t.Errorf("empty stats = %q, %v", out, err)
	}
}

// TestEndToEndOverGRIS mounts the archive extension on a GRIS handler.
func TestEndToEndOverGRIS(t *testing.T) {
	clock := softstate.NewFakeClock()
	host := hostinfo.New("h", hostinfo.Spec{OS: "linux", OSVer: "1", CPUType: "ia32",
		CPUCount: 4, MemoryMB: 1024}, 5)
	suffix := ldap.MustParseDN("hn=h, o=g")
	backend := &providers.DynamicHost{Host: host, Base: suffix}
	archive := NewArchive()
	rec := NewRecorder(archive, backend, time.Minute, clock)
	rec.Start()
	defer rec.Stop()

	srv := gris.New(gris.Config{Suffix: suffix, Clock: clock,
		Extensions: map[string]gris.Extension{OIDHistory: Extension(archive)}})
	srv.Register(backend)

	waitFor(t, func() bool {
		return len(archive.Query(suffix.ChildAVA("perf", "load"), "load5", h0, h0.Add(100*time.Hour))) >= 1
	})
	req := fmt.Sprintf("dn: %s\nattr: load5\nop: stats\n", suffix.ChildAVA("perf", "load"))
	resp := srv.Extended(&ldap.Request{State: &ldap.ConnState{}},
		&ldap.ExtendedRequest{OID: OIDHistory, Value: []byte(req)})
	if resp.Code != ldap.ResultSuccess {
		t.Fatalf("extended: %+v", resp.Result)
	}
	if !strings.Contains(string(resp.Value), "count=") {
		t.Fatalf("value = %q", resp.Value)
	}
	// Unknown OIDs still refuse.
	resp = srv.Extended(&ldap.Request{State: &ldap.ConnState{}},
		&ldap.ExtendedRequest{OID: "9.9.9"})
	if resp.Code != ldap.ResultProtocolError {
		t.Fatalf("unknown OID: %+v", resp.Result)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never settled")
}
