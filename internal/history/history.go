// Package history implements the archival information source of §6: the
// paper notes that "the retrieval of archival information can require the
// support of more powerful database query interfaces, to reduce search
// costs over a continuously growing mountain of data", and positions such
// capabilities as GRIP *extensions* rather than replacements. This package
// provides a bounded time-series archive of attribute samples, a recorder
// that populates it from a provider backend, and the GRIP extended
// operation that queries it (time-range scans with aggregation — exactly
// what the snapshot-oriented filter language cannot express).
package history

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mds2/internal/gris"
	"mds2/internal/ldap"
	"mds2/internal/softstate"
)

// Sample is one recorded observation of an attribute.
type Sample struct {
	At    time.Time
	Value float64
}

// Archive stores bounded per-series sample history. Series are keyed by
// (normalized DN, lowercased attribute).
type Archive struct {
	// MaxSamples bounds each series (oldest evicted first); default 4096.
	MaxSamples int

	mu     sync.Mutex
	series map[string][]Sample
}

// NewArchive returns an empty archive.
func NewArchive() *Archive {
	return &Archive{MaxSamples: 4096, series: map[string][]Sample{}}
}

func seriesKey(dn ldap.DN, attr string) string {
	return dn.Normalize() + "\x00" + strings.ToLower(attr)
}

// Record appends a sample for one series.
func (a *Archive) Record(dn ldap.DN, attr string, at time.Time, value float64) {
	key := seriesKey(dn, attr)
	a.mu.Lock()
	defer a.mu.Unlock()
	s := append(a.series[key], Sample{At: at, Value: value})
	if max := a.maxSamples(); len(s) > max {
		s = s[len(s)-max:]
	}
	a.series[key] = s
}

func (a *Archive) maxSamples() int {
	if a.MaxSamples > 0 {
		return a.MaxSamples
	}
	return 4096
}

// RecordEntry samples every numeric attribute of an entry.
func (a *Archive) RecordEntry(e *ldap.Entry, at time.Time) {
	for _, attr := range e.Attrs {
		if strings.EqualFold(attr.Name, "objectclass") {
			continue
		}
		if len(attr.Values) == 0 {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(attr.Values[0]), 64)
		if err != nil {
			continue
		}
		a.Record(e.DN, attr.Name, at, v)
	}
}

// Query returns the samples of a series within [from, to], in time order.
func (a *Archive) Query(dn ldap.DN, attr string, from, to time.Time) []Sample {
	key := seriesKey(dn, attr)
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []Sample
	for _, s := range a.series[key] {
		if !s.At.Before(from) && !s.At.After(to) {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At.Before(out[j].At) })
	return out
}

// Series lists the recorded series keys as "dn|attr", sorted.
func (a *Archive) Series() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.series))
	for k := range a.series {
		out = append(out, strings.ReplaceAll(k, "\x00", "|"))
	}
	sort.Strings(out)
	return out
}

// Stats aggregates a time range.
type Stats struct {
	Count    int
	Min, Max float64
	Mean     float64
}

// Aggregate computes range statistics over a series.
func (a *Archive) Aggregate(dn ldap.DN, attr string, from, to time.Time) (Stats, bool) {
	samples := a.Query(dn, attr, from, to)
	if len(samples) == 0 {
		return Stats{}, false
	}
	st := Stats{Count: len(samples), Min: samples[0].Value, Max: samples[0].Value}
	sum := 0.0
	for _, s := range samples {
		if s.Value < st.Min {
			st.Min = s.Value
		}
		if s.Value > st.Max {
			st.Max = s.Value
		}
		sum += s.Value
	}
	st.Mean = sum / float64(len(samples))
	return st, true
}

// Recorder periodically samples a provider backend into an archive — the
// sensor-archival pipeline of monitoring systems like NetLogger that §6
// says the architecture should integrate rather than replace.
type Recorder struct {
	Archive  *Archive
	Backend  gris.Backend
	Interval time.Duration

	clock softstate.Clock
	stop  chan struct{}
	wg    sync.WaitGroup
	once  sync.Once
}

// NewRecorder builds a recorder (does not start it).
func NewRecorder(archive *Archive, backend gris.Backend, interval time.Duration,
	clock softstate.Clock) *Recorder {
	if clock == nil {
		clock = softstate.RealClock{}
	}
	return &Recorder{Archive: archive, Backend: backend, Interval: interval,
		clock: clock, stop: make(chan struct{})}
}

// RecordOnce samples the backend immediately.
func (r *Recorder) RecordOnce() error {
	now := r.clock.Now()
	entries, err := r.Backend.Entries(&gris.Query{
		Base: r.Backend.Suffix(), Scope: ldap.ScopeWholeSubtree, Now: now})
	if err != nil {
		return err
	}
	for _, e := range entries {
		r.Archive.RecordEntry(e, now)
	}
	return nil
}

// Start launches the sampling loop.
func (r *Recorder) Start() {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		for {
			_ = r.RecordOnce() // a failed provider is retried next tick
			select {
			case <-r.stop:
				return
			case <-r.clock.After(r.Interval):
			}
		}
	}()
}

// Stop halts the loop.
func (r *Recorder) Stop() {
	r.once.Do(func() { close(r.stop) })
	r.wg.Wait()
}

// OIDHistory identifies the archival GRIP extension.
const OIDHistory = "1.3.6.1.4.1.3536.2.2"

// Extension mounts the archive behind the GRIP extension point. The request
// is a small text form:
//
//	dn: perf=load, hn=hostX, o=grid
//	attr: load5
//	from: 2001-06-01T00:00:00Z
//	to: 2001-06-01T01:00:00Z
//	op: samples | stats
//
// The response is one sample per line ("RFC3339 value") or a single stats
// line ("count min max mean").
func Extension(a *Archive) gris.Extension {
	return func(_ *ldap.Request, value []byte) ([]byte, error) {
		req, err := parseRequest(string(value))
		if err != nil {
			return nil, err
		}
		switch req.op {
		case "samples":
			samples := a.Query(req.dn, req.attr, req.from, req.to)
			var b strings.Builder
			for _, s := range samples {
				fmt.Fprintf(&b, "%s %g\n", s.At.UTC().Format(time.RFC3339Nano), s.Value)
			}
			return []byte(b.String()), nil
		case "stats":
			st, ok := a.Aggregate(req.dn, req.attr, req.from, req.to)
			if !ok {
				return []byte("count=0\n"), nil
			}
			return []byte(fmt.Sprintf("count=%d min=%g max=%g mean=%g\n",
				st.Count, st.Min, st.Max, st.Mean)), nil
		default:
			return nil, fmt.Errorf("history: unknown op %q", req.op)
		}
	}
}

type request struct {
	dn       ldap.DN
	attr     string
	from, to time.Time
	op       string
}

func parseRequest(text string) (*request, error) {
	req := &request{op: "samples", from: time.Unix(0, 0),
		to: time.Date(9999, 1, 1, 0, 0, 0, 0, time.UTC)}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		idx := strings.Index(line, ":")
		if idx <= 0 {
			return nil, fmt.Errorf("history: bad request line %q", line)
		}
		key := strings.ToLower(strings.TrimSpace(line[:idx]))
		val := strings.TrimSpace(line[idx+1:])
		var err error
		switch key {
		case "dn":
			req.dn, err = ldap.ParseDN(val)
		case "attr":
			req.attr = val
		case "from":
			req.from, err = time.Parse(time.RFC3339Nano, val)
		case "to":
			req.to, err = time.Parse(time.RFC3339Nano, val)
		case "op":
			req.op = val
		default:
			err = fmt.Errorf("history: unknown key %q", key)
		}
		if err != nil {
			return nil, err
		}
	}
	if req.dn.IsZero() || req.attr == "" {
		return nil, fmt.Errorf("history: request needs dn and attr")
	}
	return req, nil
}
