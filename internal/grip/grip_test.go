package grip

import (
	"context"
	"net"
	"testing"
	"time"

	"mds2/internal/gsi"
	"mds2/internal/ldap"
)

// startStore serves an ldap.Store over loopback TCP.
func startStore(t *testing.T) (*Client, *ldap.Store) {
	t.Helper()
	store := ldap.NewStore()
	srv := ldap.NewServer(store)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, store
}

func seedEntries(t *testing.T, store *ldap.Store) {
	t.Helper()
	entries := []*ldap.Entry{
		ldap.NewEntry(ldap.MustParseDN("hn=a, o=g")).
			Add("objectclass", "computer").Add("hn", "a").Add("cpucount", "8"),
		ldap.NewEntry(ldap.MustParseDN("hn=b, o=g")).
			Add("objectclass", "computer").Add("hn", "b").Add("cpucount", "64"),
		ldap.NewEntry(ldap.MustParseDN("perf=l, hn=a, o=g")).
			Add("objectclass", "loadaverage").Add("perf", "l").Add("load5", "0.5"),
	}
	for _, e := range entries {
		if err := store.Put(e); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLookup(t *testing.T) {
	c, store := startStore(t)
	seedEntries(t, store)
	e, err := c.Lookup(ldap.MustParseDN("hn=b, o=g"))
	if err != nil {
		t.Fatal(err)
	}
	if e.First("cpucount") != "64" {
		t.Fatalf("entry = %s", e)
	}
	// Attribute selection.
	e, err = c.Lookup(ldap.MustParseDN("hn=b, o=g"), "hn")
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Attrs) != 1 {
		t.Fatalf("selected = %v", e.Attrs)
	}
	// Missing entries are noSuchObject.
	if _, err := c.Lookup(ldap.MustParseDN("hn=ghost, o=g")); !ldap.IsCode(err, ldap.ResultNoSuchObject) {
		t.Fatalf("missing lookup: %v", err)
	}
}

func TestSearchAndLimits(t *testing.T) {
	c, store := startStore(t)
	seedEntries(t, store)
	got, err := c.Search(ldap.MustParseDN("o=g"), "(objectclass=computer)")
	if err != nil || len(got) != 2 {
		t.Fatalf("search: %v, %d", err, len(got))
	}
	// Bad filters fail client-side.
	if _, err := c.Search(ldap.MustParseDN("o=g"), "((broken"); err == nil {
		t.Fatal("bad filter should fail")
	}
	limited, err := c.SearchLimited(ldap.MustParseDN("o=g"), "(objectclass=*)", 1)
	if err != nil || len(limited) != 1 {
		t.Fatalf("limited: %v, %d", err, len(limited))
	}
}

func TestSubscribe(t *testing.T) {
	c, store := startStore(t)
	seedEntries(t, store)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got := make(chan Update, 16)
	go func() {
		c.Subscribe(ctx, ldap.MustParseDN("o=g"), "(objectclass=computer)", true,
			func(u Update) error {
				got <- u
				return nil
			})
	}()
	time.Sleep(50 * time.Millisecond)
	fresh := ldap.NewEntry(ldap.MustParseDN("hn=c, o=g")).
		Add("objectclass", "computer").Add("hn", "c")
	if err := store.Put(fresh); err != nil {
		t.Fatal(err)
	}
	select {
	case u := <-got:
		if !u.Entry.DN.Equal(fresh.DN) || u.ChangeType != ldap.ChangeAdd {
			t.Fatalf("update = %+v", u)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("no subscription update")
	}
	// changesOnly suppressed the baseline: nothing else buffered.
	select {
	case u := <-got:
		t.Fatalf("unexpected update %+v", u)
	case <-time.After(20 * time.Millisecond):
	}
}

func TestRegisterViaAdd(t *testing.T) {
	c, store := startStore(t)
	e := ldap.NewEntry(ldap.MustParseDN("grrp=x, mds-vo-op=register")).
		Add("objectclass", "mdsregistration").Add("grrp", "ldap://x")
	if err := c.Register(e); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 1 {
		t.Fatal("registration entry not stored")
	}
}

func TestAuthenticateAgainstGRIS(t *testing.T) {
	// The SASL flow requires a GSI-aware handler; ldap.Store refuses it.
	c, _ := startStore(t)
	ca, _ := gsi.NewAuthority("o=ca")
	trust := gsi.NewTrustStore()
	trust.TrustAuthority(ca)
	keys, _ := ca.Issue("cn=user", time.Hour, time.Now())
	if _, err := c.Authenticate(keys, trust); err == nil {
		t.Fatal("store should refuse SASL binds")
	}
}

func TestSetTimeoutAndRaw(t *testing.T) {
	c, _ := startStore(t)
	c.SetTimeout(123 * time.Millisecond)
	if c.Raw().Timeout != 123*time.Millisecond {
		t.Fatal("timeout not applied")
	}
}

func TestExtendedUnsupported(t *testing.T) {
	c, _ := startStore(t)
	if _, err := c.Extended("1.2.3", nil); err == nil {
		t.Fatal("store refuses extended ops")
	}
}
