package grip_test

import (
	"net"
	"testing"
	"time"

	"mds2/internal/giis"
	"mds2/internal/grip"
	"mds2/internal/gris"
	"mds2/internal/grrp"
	"mds2/internal/gsi"
	"mds2/internal/hostinfo"
	"mds2/internal/ldap"
	"mds2/internal/providers"
	"mds2/internal/softstate"
)

// testSecurity bundles one CA + trust store for a test.
func testSecurity(t *testing.T) (*gsi.Authority, *gsi.TrustStore) {
	t.Helper()
	ca, err := gsi.NewAuthority("o=test ca")
	if err != nil {
		t.Fatal(err)
	}
	ts := gsi.NewTrustStore()
	ts.TrustAuthority(ca)
	return ca, ts
}

// startGRIS serves a GSI-enabled GRIS over loopback TCP.
func startGRIS(t *testing.T, ca *gsi.Authority, trust *gsi.TrustStore) (string, ldap.DN) {
	t.Helper()
	suffix := ldap.MustParseDN("hn=h, o=g")
	host := hostinfo.New("h", hostinfo.Spec{OS: "linux", OSVer: "1",
		CPUType: "ia32", CPUCount: 4, MemoryMB: 1024}, 3)
	serverKeys, err := ca.Issue("cn=gris.h", time.Hour, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	gs := gris.New(gris.Config{Suffix: suffix, Keys: serverKeys, Trust: trust})
	for _, b := range providers.HostBackends(host, suffix) {
		gs.Register(b)
	}
	srv := ldap.NewServer(gs)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return l.Addr().String(), suffix
}

func TestAuthenticateMutual(t *testing.T) {
	ca, trust := testSecurity(t)
	addr, suffix := startGRIS(t, ca, trust)
	c, err := grip.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	userKeys, _ := ca.Issue("cn=user", time.Hour, time.Now())
	serverCred, err := c.Authenticate(userKeys, trust)
	if err != nil {
		t.Fatal(err)
	}
	if serverCred.EndEntity() != "cn=gris.h" {
		t.Fatalf("server identity = %q", serverCred.EndEntity())
	}
	if _, err := c.Search(suffix, "(objectclass=computer)"); err != nil {
		t.Fatal(err)
	}
}

func TestAuthenticateUntrustedFails(t *testing.T) {
	ca, trust := testSecurity(t)
	addr, _ := startGRIS(t, ca, trust)
	rogue, _ := gsi.NewAuthority("o=rogue")
	rogueKeys, _ := rogue.Issue("cn=mallory", time.Hour, time.Now())
	rogueTrust := gsi.NewTrustStore()
	rogueTrust.TrustAuthority(rogue)
	rogueTrust.TrustAuthority(ca) // client accepts server; server must refuse client
	c, err := grip.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Authenticate(rogueKeys, rogueTrust); err == nil {
		t.Fatal("untrusted credential accepted")
	}
}

// TestSearchFollowingReferrals exercises the referral-follow path entirely
// in-package: a referral GIIS refers to a GRIS; the client follows.
func TestSearchFollowingReferrals(t *testing.T) {
	ca, trust := testSecurity(t)
	grisAddr, suffix := startGRIS(t, ca, trust)

	dir := giis.New(giis.Config{
		Name: "dir", Suffix: ldap.MustParseDN("vo=v"),
		SelfURL:  ldap.MustParseURL("ldap://127.0.0.1:0"),
		Strategy: giis.NewReferral(),
	})
	t.Cleanup(dir.Close)
	now := time.Now()
	if !dir.Ingest(testRegistration(grisAddr, suffix, now)) {
		t.Fatal("registration refused")
	}
	srv := ldap.NewServer(dir)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })

	c, err := grip.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	entries, err := c.SearchFollowing(ldap.MustParseDN("vo=v"), "(objectclass=computer)",
		func(url ldap.URL) (*grip.Client, error) { return grip.Dial(url.Address()) }, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].First("hn") != "h" {
		t.Fatalf("followed entries = %v", entries)
	}
	// With an unreachable provider the follow degrades to partial results.
	dir.Ingest(testRegistration("127.0.0.1:1", ldap.MustParseDN("hn=dead, o=g"), now))
	entries, err = c.SearchFollowing(ldap.MustParseDN("vo=v"), "(objectclass=computer)",
		func(url ldap.URL) (*grip.Client, error) { return grip.Dial(url.Address()) }, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("partial follow = %d entries", len(entries))
	}
}

func testRegistration(addr string, suffix ldap.DN, now time.Time) *grrp.Message {
	return &grrp.Message{
		Type:       grrp.TypeRegister,
		ServiceURL: "ldap://" + addr,
		MDSType:    "gris",
		SuffixDN:   suffix.String(),
		IssuedAt:   now,
		ValidUntil: now.Add(time.Hour),
	}
}

// TestAuthenticateExpiryFakeClock drives GSI credential expiry through the
// full GRIP/LDAP stack on a FakeClock. Before PR 2, AuthenticateLDAP
// hard-wired time.Now, so the handshake's expiry checks silently ignored
// injected clocks and this scenario was untestable.
func TestAuthenticateExpiryFakeClock(t *testing.T) {
	clock := softstate.NewFakeClock()
	ca, trust := testSecurity(t)
	suffix := ldap.MustParseDN("hn=h, o=g")
	serverKeys, err := ca.Issue("cn=gris.h", time.Hour, clock.Now())
	if err != nil {
		t.Fatal(err)
	}
	gs := gris.New(gris.Config{Suffix: suffix, Keys: serverKeys, Trust: trust, Clock: clock})
	srv := ldap.NewServer(gs)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })

	userKeys, err := ca.Issue("cn=user", time.Hour, clock.Now())
	if err != nil {
		t.Fatal(err)
	}
	dial := func() *grip.Client {
		t.Helper()
		c, err := grip.Dial(l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		c.SetClock(clock)
		return c
	}

	c := dial()
	if _, err := c.Authenticate(userKeys, trust); err != nil {
		t.Fatalf("fresh credential rejected: %v", err)
	}
	c.Close()

	// Both credentials lapse one fake hour in; nothing about this test
	// depends on the wall clock.
	clock.Advance(2 * time.Hour)
	c = dial()
	defer c.Close()
	if _, err := c.Authenticate(userKeys, trust); err == nil {
		t.Fatal("expired credential accepted after FakeClock advance")
	}
}
