// Package grip provides the client side of the Grid Information Protocol
// (§4.1): enquiry (direct lookup), discovery (filtered search), and
// subscription (persistent search) against any information provider — GRIS,
// GIIS, or the MDS-1-style baseline — plus GSI mutual authentication. It is
// a thin, intention-revealing facade over the LDAP client, since GRIP *is*
// LDAP ("we adopt LDAP as a data model, query language, and protocol").
package grip

import (
	"context"
	"fmt"
	"net"
	"time"

	"mds2/internal/gsi"
	"mds2/internal/ldap"
	"mds2/internal/softstate"
)

// Client is a GRIP connection to one information provider or directory.
type Client struct {
	c *ldap.Client
	// now is the injected time source for credential-expiry checks during
	// GSI authentication; nil means the wall clock (softstate.RealClock).
	now func() time.Time
}

// Dial connects over TCP.
func Dial(addr string) (*Client, error) {
	c, err := ldap.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &Client{c: c}, nil
}

// NewClient wraps an established connection (e.g. from a simulated
// network).
func NewClient(conn net.Conn) *Client { return &Client{c: ldap.NewClient(conn)} }

// Close releases the connection.
func (g *Client) Close() error { return g.c.Close() }

// SetTimeout bounds each synchronous operation.
func (g *Client) SetTimeout(d time.Duration) { g.c.Timeout = d }

// SetClock injects the time source used for GSI credential-expiry checks
// and operation timeouts, so FakeClock tests drive the same code paths
// production runs (DESIGN.md "Static analysis & invariants").
func (g *Client) SetClock(clock softstate.Clock) {
	g.now = clock.Now
	g.c.Clock = clock
}

// Raw exposes the underlying LDAP client for protocol-level operations.
func (g *Client) Raw() *ldap.Client { return g.c }

// Authenticate performs GSI mutual authentication (SASL bind): both sides
// prove possession of trusted credentials. On success the server knows the
// caller's identity for access control, and the verified server credential
// is returned so callers can check who they are talking to.
func (g *Client) Authenticate(keys *gsi.KeyPair, trust *gsi.TrustStore) (*gsi.Credential, error) {
	return AuthenticateLDAP(g.c, keys, trust, g.now)
}

// AuthenticateLDAP runs the GSI SASL exchange over an existing LDAP client
// connection; aggregate directories use it to bind to child providers with
// their trusted server credential (§10.4: "the GIIS can also bind using a
// trusted server credential"). The injected now func drives the
// credential-expiry checks; nil means the wall clock.
func AuthenticateLDAP(c *ldap.Client, keys *gsi.KeyPair, trust *gsi.TrustStore, now func() time.Time) (*gsi.Credential, error) {
	hs := gsi.NewClientHandshake(keys, trust, now)
	hello, err := hs.Hello()
	if err != nil {
		return nil, err
	}
	resp, err := c.BindSASL("", gsi.SASLMechanism, hello)
	if err != nil {
		return nil, err
	}
	if resp.Code != ldap.ResultSaslBindInProgress {
		return nil, fmt.Errorf("grip: unexpected bind result %s: %s", resp.Code, resp.Message)
	}
	proof, err := hs.Respond(resp.ServerCreds)
	if err != nil {
		return nil, err
	}
	resp, err = c.BindSASL("", gsi.SASLMechanism, proof)
	if err != nil {
		return nil, err
	}
	if err := resp.Err(); err != nil {
		return nil, err
	}
	return hs.Server(), nil
}

// Lookup is GRIP enquiry: fetch one entry by name ("the enquiry supplies
// the resource name and the provider returns the resource description").
func (g *Client) Lookup(dn ldap.DN, attrs ...string) (*ldap.Entry, error) {
	res, err := g.c.Search(&ldap.SearchRequest{
		BaseDN:     dn.String(),
		Scope:      ldap.ScopeBaseObject,
		Attributes: attrs,
	})
	if err != nil {
		return nil, err
	}
	if len(res.Entries) == 0 {
		return nil, &ldap.ResultError{Result: ldap.Result{Code: ldap.ResultNoSuchObject, MatchedDN: dn.String()}}
	}
	return res.Entries[0], nil
}

// Search is GRIP discovery: filtered subtree search under base.
func (g *Client) Search(base ldap.DN, filter string, attrs ...string) ([]*ldap.Entry, error) {
	f, err := ldap.ParseFilter(filter)
	if err != nil {
		return nil, err
	}
	res, err := g.c.Search(&ldap.SearchRequest{
		BaseDN:     base.String(),
		Scope:      ldap.ScopeWholeSubtree,
		Filter:     f,
		Attributes: attrs,
	})
	if err != nil {
		return nil, err
	}
	return res.Entries, nil
}

// SearchStream is GRIP discovery without result buffering: each matching
// entry is handed to fn as it arrives off the wire, so arbitrarily large
// result sets stream in constant client memory. fn runs on the receive
// goroutine; returning an error abandons the search and propagates.
func (g *Client) SearchStream(base ldap.DN, filter string, fn func(*ldap.Entry) error) error {
	f, err := ldap.ParseFilter(filter)
	if err != nil {
		return err
	}
	var done ldap.Result
	err = g.c.SearchFunc(context.Background(), &ldap.SearchRequest{
		BaseDN: base.String(),
		Scope:  ldap.ScopeWholeSubtree,
		Filter: f,
	}, nil, func(e *ldap.Entry, _ []ldap.Control) error {
		return fn(e)
	}, nil, &done)
	if err != nil {
		return err
	}
	return done.Err()
}

// SearchLimited is Search with a server-side size limit; it returns
// whatever arrived when the limit was hit.
func (g *Client) SearchLimited(base ldap.DN, filter string, limit int64) ([]*ldap.Entry, error) {
	f, err := ldap.ParseFilter(filter)
	if err != nil {
		return nil, err
	}
	res, err := g.c.Search(&ldap.SearchRequest{
		BaseDN:    base.String(),
		Scope:     ldap.ScopeWholeSubtree,
		Filter:    f,
		SizeLimit: limit,
	})
	if err != nil && !ldap.IsCode(err, ldap.ResultSizeLimitExceeded) {
		return nil, err
	}
	return res.Entries, nil
}

// SearchReferrals runs a discovery and also returns any continuation
// references (a referral-mode GIIS answers this way).
func (g *Client) SearchReferrals(base ldap.DN, filter string) ([]*ldap.Entry, []string, error) {
	f, err := ldap.ParseFilter(filter)
	if err != nil {
		return nil, nil, err
	}
	res, err := g.c.Search(&ldap.SearchRequest{
		BaseDN: base.String(),
		Scope:  ldap.ScopeWholeSubtree,
		Filter: f,
	})
	if err != nil {
		return nil, nil, err
	}
	return res.Entries, res.Referrals, nil
}

// Update is one subscription notification.
type Update struct {
	Entry *ldap.Entry
	// ChangeType is an ldap.Change* value when the server attached an
	// entry-change control, else 0.
	ChangeType int64
}

// Subscribe is GRIP subscription (§6 push mode): asynchronous delivery of
// matching entries as they change, until ctx is cancelled. The onUpdate
// callback runs on the receive goroutine; returning an error cancels.
func (g *Client) Subscribe(ctx context.Context, base ldap.DN, filter string,
	changesOnly bool, onUpdate func(Update) error) error {

	f, err := ldap.ParseFilter(filter)
	if err != nil {
		return err
	}
	controls := []ldap.Control{ldap.NewPersistentSearchControl(ldap.PersistentSearch{
		ChangeTypes: ldap.ChangeAll,
		ChangesOnly: changesOnly,
		ReturnECs:   true,
	})}
	err = g.c.SearchFunc(ctx, &ldap.SearchRequest{
		BaseDN: base.String(),
		Scope:  ldap.ScopeWholeSubtree,
		Filter: f,
	}, controls, func(e *ldap.Entry, cs []ldap.Control) error {
		up := Update{Entry: e}
		if c, ok := ldap.FindControl(cs, ldap.OIDEntryChangeNotification); ok {
			if t, err := ldap.ParseEntryChange(c); err == nil {
				up.ChangeType = t
			}
		}
		return onUpdate(up)
	}, nil, nil)
	if err == context.Canceled {
		return nil
	}
	return err
}

// SearchFollowing runs a discovery at a directory and, when the directory
// answers with continuation references instead of data (a referral-mode
// GIIS protecting restricted data, §10.4), follows each referral to the
// authoritative provider using dial — re-authentication happens there, at
// the source, exactly as the paper's two-step flow requires. authenticate
// may be nil for anonymous follow-up.
func (g *Client) SearchFollowing(base ldap.DN, filter string,
	dial func(url ldap.URL) (*Client, error),
	authenticate func(*Client) error) ([]*ldap.Entry, error) {

	entries, referrals, err := g.SearchReferrals(base, filter)
	if err != nil {
		return nil, err
	}
	for _, ref := range referrals {
		url, err := ldap.ParseURL(ref)
		if err != nil {
			continue // malformed referral: skip, keep what we have
		}
		child, err := dial(url)
		if err != nil {
			continue // unreachable provider: partial results (§2.2)
		}
		if authenticate != nil {
			if err := authenticate(child); err != nil {
				child.Close()
				continue
			}
		}
		got, err := child.Search(url.DN, filter)
		child.Close()
		if err != nil {
			continue
		}
		entries = append(entries, got...)
	}
	ldap.SortEntries(entries)
	return entries, nil
}

// DefaultReferralHops bounds SearchFollowingReferrals when maxHops <= 0.
const DefaultReferralHops = 32

// SearchFollowingReferrals is the multi-hop generalization of
// SearchFollowing for a sharded or hierarchical referral-mode directory
// tier: a referral target may itself answer with further referrals (a
// coordinator shard referring to owner shards, an owner referring on), so
// the client walks the referral graph breadth-first. Each distinct
// (service, DN) target is visited at most once — a referral loop between
// shards terminates instead of hanging — and result entries are
// deduplicated by DN, because K-way replication means two shards can both
// authoritatively return the same provider's entries. maxHops bounds the
// total number of referral targets followed (DefaultReferralHops when
// <= 0). Unreachable or failing targets are skipped: partial results over
// no results (§2.2).
func (g *Client) SearchFollowingReferrals(base ldap.DN, filter string,
	dial func(url ldap.URL) (*Client, error),
	authenticate func(*Client) error, maxHops int) ([]*ldap.Entry, error) {

	if maxHops <= 0 {
		maxHops = DefaultReferralHops
	}
	entries, referrals, err := g.SearchReferrals(base, filter)
	if err != nil {
		return nil, err
	}

	seenDN := make(map[string]bool, len(entries))
	var out []*ldap.Entry
	keep := func(es []*ldap.Entry) {
		for _, e := range es {
			k := e.DN.Normalize()
			if seenDN[k] {
				continue
			}
			seenDN[k] = true
			out = append(out, e)
		}
	}
	keep(entries)

	visited := map[string]bool{}
	var queue []ldap.URL
	enqueue := func(refs []string) {
		for _, ref := range refs {
			url, err := ldap.ParseURL(ref)
			if err != nil {
				continue // malformed referral: skip, keep what we have
			}
			if url.DN.IsZero() {
				url = url.WithDN(base)
			}
			k := url.ServiceKey() + "|" + url.DN.Normalize()
			if visited[k] {
				continue
			}
			visited[k] = true
			queue = append(queue, url)
		}
	}
	enqueue(referrals)

	for hops := 0; len(queue) > 0 && hops < maxHops; hops++ {
		url := queue[0]
		queue = queue[1:]
		next, err := dial(url)
		if err != nil {
			continue // unreachable target: partial results (§2.2)
		}
		if authenticate != nil {
			if err := authenticate(next); err != nil {
				next.Close()
				continue
			}
		}
		got, refs, err := next.SearchReferrals(url.DN, filter)
		next.Close()
		if err != nil {
			continue
		}
		keep(got)
		enqueue(refs)
	}
	ldap.SortEntries(out)
	return out, nil
}

// Register pushes a GRRP registration carried as an LDAP add (the MDS-2.1
// transport, §10.1). Most callers instead sustain streams with
// grrp.Registrar; this is the one-shot building block.
func (g *Client) Register(entry *ldap.Entry) error { return g.c.Add(entry) }

// Extended invokes a GRIP protocol extension by OID (§6: "resources may
// offer additional information delivery capabilities beyond those provided
// by GRIP").
func (g *Client) Extended(oid string, value []byte) ([]byte, error) {
	resp, err := g.c.Extended(oid, value)
	if err != nil {
		return nil, err
	}
	return resp.Value, nil
}
