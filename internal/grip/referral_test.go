package grip

import (
	"fmt"
	"testing"

	"mds2/internal/ldap"
	"mds2/internal/simnet"
)

// referralNode is a hand-built directory node for exercising the client's
// referral walk: it serves a fixed set of entries and refers the caller
// onward to other nodes.
type referralNode struct {
	ldap.BaseHandler
	entries []*ldap.Entry
	refer   []string
}

func (n *referralNode) Search(_ *ldap.Request, _ *ldap.SearchRequest, w ldap.SearchWriter) ldap.Result {
	for _, e := range n.entries {
		if err := w.SendEntry(e); err != nil {
			return ldap.Result{Code: ldap.ResultOther, Message: err.Error()}
		}
	}
	if len(n.refer) > 0 {
		if err := w.SendReferral(n.refer...); err != nil {
			return ldap.Result{Code: ldap.ResultOther, Message: err.Error()}
		}
	}
	return ldap.Result{Code: ldap.ResultSuccess}
}

type referralRig struct {
	t       *testing.T
	network *simnet.Network
}

func newReferralRig(t *testing.T) *referralRig {
	return &referralRig{t: t, network: simnet.New(1)}
}

func (r *referralRig) serve(node string, h ldap.Handler) {
	r.t.Helper()
	srv := ldap.NewServer(h)
	l, err := r.network.Listen(node, "389")
	if err != nil {
		r.t.Fatal(err)
	}
	go srv.Serve(l)
	r.t.Cleanup(func() { srv.Close() })
}

func (r *referralRig) dial() func(url ldap.URL) (*Client, error) {
	return func(url ldap.URL) (*Client, error) {
		conn, err := r.network.Dial("client-node", url.Address())
		if err != nil {
			return nil, err
		}
		return NewClient(conn), nil
	}
}

func hostEntry(name string) *ldap.Entry {
	return ldap.NewEntry(ldap.MustParseDN(fmt.Sprintf("hn=%s, o=grid", name))).
		Add("objectclass", "computer").Add("hn", name)
}

// TestReferralChainAcrossHops follows a chain coordinator -> shard1 ->
// shard2: entries from every hop are collected even though the coordinator
// never names shard2 directly.
func TestReferralChainAcrossHops(t *testing.T) {
	r := newReferralRig(t)
	r.serve("shard2-node", &referralNode{entries: []*ldap.Entry{hostEntry("c")}})
	r.serve("shard1-node", &referralNode{
		entries: []*ldap.Entry{hostEntry("b")},
		refer:   []string{"sim://shard2-node:389/o=grid"},
	})
	r.serve("coord-node", &referralNode{
		entries: []*ldap.Entry{hostEntry("a")},
		refer:   []string{"sim://shard1-node:389/o=grid"},
	})

	dial := r.dial()
	c, err := dial(ldap.MustParseURL("sim://coord-node:389"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	entries, err := c.SearchFollowingReferrals(ldap.MustParseDN("o=grid"),
		"(objectclass=computer)", dial, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.First("hn"))
	}
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Fatalf("chain walk = %v, want [a b c]", names)
	}
}

// TestReferralDedupsReplicatedEntries: two replica shards both return the
// same provider's entry (K-way replication); the client keeps one copy.
func TestReferralDedupsReplicatedEntries(t *testing.T) {
	r := newReferralRig(t)
	r.serve("rep1-node", &referralNode{entries: []*ldap.Entry{hostEntry("x"), hostEntry("y")}})
	r.serve("rep2-node", &referralNode{entries: []*ldap.Entry{hostEntry("y"), hostEntry("z")}})
	r.serve("coord-node", &referralNode{refer: []string{
		"sim://rep1-node:389/o=grid",
		"sim://rep2-node:389/o=grid",
	}})

	dial := r.dial()
	c, err := dial(ldap.MustParseURL("sim://coord-node:389"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	entries, err := c.SearchFollowingReferrals(ldap.MustParseDN("o=grid"),
		"(objectclass=computer)", dial, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, e := range entries {
		seen[e.First("hn")]++
	}
	if len(entries) != 3 || seen["x"] != 1 || seen["y"] != 1 || seen["z"] != 1 {
		t.Fatalf("deduped walk = %v, want x,y,z once each", seen)
	}
}

// TestReferralLoopTerminates: two shards refer to each other (and back to
// the coordinator). The visited set must break the cycle.
func TestReferralLoopTerminates(t *testing.T) {
	r := newReferralRig(t)
	r.serve("loop1-node", &referralNode{
		entries: []*ldap.Entry{hostEntry("p")},
		refer:   []string{"sim://loop2-node:389/o=grid", "sim://coord-node:389/o=grid"},
	})
	r.serve("loop2-node", &referralNode{
		entries: []*ldap.Entry{hostEntry("q")},
		refer:   []string{"sim://loop1-node:389/o=grid"},
	})
	coord := &referralNode{refer: []string{"sim://loop1-node:389/o=grid"}}
	r.serve("coord-node", coord)

	dial := r.dial()
	c, err := dial(ldap.MustParseURL("sim://coord-node:389"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	entries, err := c.SearchFollowingReferrals(ldap.MustParseDN("o=grid"),
		"(objectclass=computer)", dial, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("loop walk = %d entries, want 2", len(entries))
	}
}

// TestReferralHopBudget: an endless referral ladder stops at maxHops with
// partial results rather than walking forever.
func TestReferralHopBudget(t *testing.T) {
	r := newReferralRig(t)
	const rungs = 8
	for i := 0; i < rungs; i++ {
		next := fmt.Sprintf("sim://rung%d-node:389/o=grid", i+1)
		r.serve(fmt.Sprintf("rung%d-node", i), &referralNode{
			entries: []*ldap.Entry{hostEntry(fmt.Sprintf("r%d", i))},
			refer:   []string{next},
		})
	}
	dial := r.dial()
	c, err := dial(ldap.MustParseURL("sim://rung0-node:389"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	entries, err := c.SearchFollowingReferrals(ldap.MustParseDN("o=grid"),
		"(objectclass=computer)", dial, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Initial search + 3 followed hops = 4 rungs seen; rung4's referral to
	// rung5 (which does not exist) is never dialed.
	if len(entries) != 4 {
		t.Fatalf("budgeted walk = %d entries, want 4", len(entries))
	}
}

// TestReferralSkipsDeadTargets: one referral target is unreachable; the
// client keeps the live targets' results (partial results, §2.2).
func TestReferralSkipsDeadTargets(t *testing.T) {
	r := newReferralRig(t)
	r.serve("live-node", &referralNode{entries: []*ldap.Entry{hostEntry("alive")}})
	r.serve("coord-node", &referralNode{refer: []string{
		"sim://dead-node:389/o=grid", // never listens
		"sim://live-node:389/o=grid",
	}})

	dial := r.dial()
	c, err := dial(ldap.MustParseURL("sim://coord-node:389"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	entries, err := c.SearchFollowingReferrals(ldap.MustParseDN("o=grid"),
		"(objectclass=computer)", dial, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].First("hn") != "alive" {
		t.Fatalf("partial walk = %v, want just the live target's entry", entries)
	}
}
