package experiments

import (
	"fmt"
	"io"
	"time"

	"math/rand"

	"mds2/internal/detect"
	"mds2/internal/obs"
	"mds2/internal/simnet"
	"mds2/internal/softstate"
)

func init() {
	register("detector", "E1 (§4.3): failure-detector tradeoff — false positives vs detection latency across loss rate and timeout", runDetector)
}

// runDetector sweeps the §4.3 design space: a producer refreshes every
// interval over a lossy link; the discoverer suspects it after `timeout`
// of silence. Short timeouts detect true failures quickly but mistake
// bursts of loss for failure; long timeouts are accurate but slow.
func runDetector(w io.Writer) error {
	const (
		interval    = 10 * time.Second
		liveSteps   = 1000 // refresh periods observed while producer is up
		deadRepeats = 40   // independent true-failure trials
	)
	tab := NewTable(
		"E1 — unreliable failure detection over a lossy link (refresh every 10s)",
		"loss", "timeout", "false pos / hour", "mean detection latency", "p95 detection latency")

	for _, loss := range []float64{0.01, 0.10, 0.30, 0.50} {
		for _, mult := range []int{2, 4, 8} {
			timeout := time.Duration(mult) * interval
			fp := falsePositives(loss, interval, timeout, liveSteps)
			fpPerHour := float64(fp) / (float64(liveSteps) * interval.Hours())
			lat := detectionLatency(loss, interval, timeout, deadRepeats)
			mean := lat.Mean()
			p95, _ := lat.Quantile(0.95)
			tab.AddRow(fmt.Sprintf("%.0f%%", loss*100), timeout, fpPerHour, mean, p95)
		}
	}
	_, err := fmt.Fprintln(w, tab)
	return err
}

// falsePositives counts premature suspicions of a perfectly healthy
// producer whose refreshes traverse a lossy link.
func falsePositives(loss float64, interval, timeout time.Duration, steps int) int {
	clock := softstate.NewFakeClock()
	net := simnet.New(int64(loss*1000) + int64(timeout))
	net.SetLoss(loss)
	d := detect.New(timeout, clock)
	net.HandleDatagrams("dir", func(string, []byte) { d.Observe("p") })
	d.Observe("p")
	for i := 0; i < steps; i++ {
		clock.Advance(interval)
		net.SendDatagram("p", "dir", nil)
		d.Check()
	}
	return d.Stats().Recoveries
}

// detectionLatency measures, across repeats, how long a real crash stays
// undetected. The producer crashes at a random offset into its refresh
// cycle, so under loss the discoverer's last evidence may already be
// several intervals old — detection can then be *faster* than the timeout
// measured from the crash instant, while a freshly heard-from producer
// takes the full timeout.
func detectionLatency(loss float64, interval, timeout time.Duration, repeats int) *obs.Histogram {
	hist := &obs.Histogram{}
	for r := 0; r < repeats; r++ {
		clock := softstate.NewFakeClock()
		rng := rand.New(rand.NewSource(int64(r)*7919 + 13))
		net := simnet.New(int64(r)*104729 + 7)
		net.SetLoss(loss)
		d := detect.New(timeout, clock)
		net.HandleDatagrams("dir", func(string, []byte) { d.Observe("p") })
		d.Observe("p")
		// Healthy warm-up under loss.
		for i := 0; i < 20; i++ {
			clock.Advance(interval)
			net.SendDatagram("p", "dir", nil)
			d.Check()
		}
		// Ensure the trial starts with the producer believed alive (a
		// warm-up loss burst may have suspected it already).
		d.Observe("p")
		for i := 0; i < 3; i++ {
			clock.Advance(interval)
			net.SendDatagram("p", "dir", nil)
			d.Check()
		}
		// Crash at a random offset into the current refresh cycle.
		clock.Advance(time.Duration(rng.Int63n(int64(interval))))
		crashAt := clock.Now()
		for d.Status("p") == detect.StatusAlive {
			clock.Advance(time.Second)
			d.Check()
		}
		latency := clock.Now().Sub(crashAt)
		hist.Observe(latency)
	}
	return hist
}
