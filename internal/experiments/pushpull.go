package experiments

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"mds2/internal/gris"
	"mds2/internal/ldap"
	"mds2/internal/providers"
	"mds2/internal/softstate"
)

// runPushPull compares the two GRIP delivery models of §6 on a changing
// value. A monitored quantity changes every two minutes, offset into the
// interval; pull observes it at the next poll, push at the server's next
// subscription re-evaluation. The table shows the messages-vs-latency trade
// the paper describes ("in the case of monitoring ... we may prefer that
// the information is delivered asynchronously").
func runPushPull(w io.Writer) error {
	const (
		horizon    = 30 * time.Minute
		changeGap  = 2 * time.Minute
		changeAt   = 31 * time.Second // offset of each change into its interval
		serverPoll = 5 * time.Second  // push-mode internal re-evaluation
	)
	tab := NewTable(
		"E6 — pull vs push monitoring (30 simulated minutes; value changes every 2m)",
		"mode", "messages", "changes observed", "mean observation delay", "max delay")

	type result struct {
		msgs  int
		seen  int
		mean  time.Duration
		worst time.Duration
	}

	run := func(pollEvery time.Duration, push bool) (result, error) {
		clock := softstate.NewFakeClock()
		suffix := ldap.MustParseDN("hn=h, o=g")

		var mu sync.Mutex
		value := "v0"
		changedAt := map[string]time.Time{}  // value -> when it became current
		observedAt := map[string]time.Time{} // value -> when first delivered
		msgs := 0

		backend := &providers.Func{
			Label:   "counter",
			Subtree: suffix,
			Generate: func(*gris.Query) ([]*ldap.Entry, error) {
				mu.Lock()
				v := value
				mu.Unlock()
				return []*ldap.Entry{ldap.NewEntry(suffix.ChildAVA("perf", "load")).
					Add("objectclass", "perf", "loadaverage").
					Add("perf", "load").Add("load5", v)}, nil
			},
		}
		srv := gris.New(gris.Config{Suffix: suffix, Clock: clock, PollInterval: serverPoll})
		srv.Register(backend)

		observe := sinkFunc(func(e *ldap.Entry) error {
			mu.Lock()
			msgs++
			v := e.First("load5")
			if _, ok := observedAt[v]; !ok {
				observedAt[v] = clock.Now()
			}
			mu.Unlock()
			return nil
		})
		searchReq := &ldap.SearchRequest{BaseDN: suffix.String(), Scope: ldap.ScopeWholeSubtree,
			Filter: ldap.MustParseFilter("(objectclass=loadaverage)")}

		if push {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			req := &ldap.Request{State: &ldap.ConnState{}, Ctx: ctx,
				Controls: []ldap.Control{ldap.NewPersistentSearchControl(ldap.PersistentSearch{
					ChangeTypes: ldap.ChangeAll})}}
			go srv.Search(req, searchReq, observe)
			time.Sleep(10 * time.Millisecond) // subscription establishes, baseline flows
		}

		// Drive simulated time in one-second ticks.
		for sec := 1; sec <= int(horizon/time.Second); sec++ {
			clock.Advance(time.Second)
			t := time.Duration(sec) * time.Second
			if (t-changeAt) >= 0 && (t-changeAt)%changeGap == 0 {
				mu.Lock()
				value = fmt.Sprintf("v%d", int((t-changeAt)/changeGap)+1)
				changedAt[value] = clock.Now()
				mu.Unlock()
			}
			if push {
				if sec%int(serverPoll/time.Second) == 0 {
					time.Sleep(time.Millisecond) // let the push loop re-evaluate
				}
			} else if sec%int(pollEvery/time.Second) == 0 {
				srv.Search(&ldap.Request{State: &ldap.ConnState{}}, searchReq, observe)
			}
		}
		if push {
			time.Sleep(5 * time.Millisecond) // drain the final re-evaluation
		}

		mu.Lock()
		defer mu.Unlock()
		var res result
		res.msgs = msgs
		var total time.Duration
		for v, at := range changedAt {
			seen, ok := observedAt[v]
			if !ok || seen.Before(at) {
				continue
			}
			d := seen.Sub(at)
			total += d
			if d > res.worst {
				res.worst = d
			}
			res.seen++
		}
		if res.seen > 0 {
			res.mean = total / time.Duration(res.seen)
		}
		return res, nil
	}

	for _, poll := range []time.Duration{10 * time.Second, time.Minute, 5 * time.Minute} {
		r, err := run(poll, false)
		if err != nil {
			return err
		}
		tab.AddRow(fmt.Sprintf("pull every %v", poll), r.msgs, r.seen, r.mean, r.worst)
	}
	r, err := run(0, true)
	if err != nil {
		return err
	}
	tab.AddRow("push (subscription)", r.msgs, r.seen, r.mean, r.worst)
	_, err = fmt.Fprintln(w, tab)
	return err
}

type sinkFunc func(*ldap.Entry) error

func (f sinkFunc) SendEntry(e *ldap.Entry, _ ...ldap.Control) error { return f(e) }
func (f sinkFunc) SendReferral(...string) error                     { return nil }
