package experiments

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"mds2/internal/gris"
	"mds2/internal/ldap"
	"mds2/internal/softstate"
)

func init() {
	register("stampede", "E8 (§10.3): cache-stampede coalescing — concurrent expired-TTL misses per provider invocation", runStampede)
}

// costedBackend charges a real (wall-clock) provider execution cost and is
// safe for concurrent invocation — the stampede experiment needs true
// parallelism, so it runs on the real clock unlike the simulated-time E2.
type costedBackend struct {
	suffix ldap.DN
	cost   time.Duration
	calls  atomic.Int64
}

func (b *costedBackend) Name() string            { return "costed" }
func (b *costedBackend) Suffix() ldap.DN         { return b.suffix }
func (b *costedBackend) Attributes() []string    { return nil }
func (b *costedBackend) CacheTTL() time.Duration { return time.Hour }
func (b *costedBackend) Entries(*gris.Query) ([]*ldap.Entry, error) {
	b.calls.Add(1)
	time.Sleep(b.cost)
	return []*ldap.Entry{ldap.NewEntry(b.suffix).
		Add("objectclass", "computer").
		Add("hn", "h")}, nil
}

func runStampede(w io.Writer) error {
	const providerCost = 5 * time.Millisecond
	tab := NewTable(
		"E8 — cache-stampede coalescing (cold cache, provider execution costs 5ms real time)",
		"concurrent clients", "provider invocations", "cache hits", "wall time")

	for _, clients := range []int{1, 8, 32, 128} {
		suffix := ldap.MustParseDN("hn=h, o=g")
		backend := &costedBackend{suffix: suffix, cost: providerCost}
		srv := gris.New(gris.Config{Suffix: suffix, Clock: softstate.RealClock{}})
		srv.Register(backend)

		req := &ldap.SearchRequest{BaseDN: suffix.String(), Scope: ldap.ScopeWholeSubtree}
		start := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < clients; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				srv.Search(&ldap.Request{State: &ldap.ConnState{}}, req, &discard{})
			}()
		}
		began := time.Now()
		close(start)
		wg.Wait()
		tab.AddRow(clients, backend.calls.Load(), srv.CacheHits.Value(),
			time.Since(began).Round(time.Millisecond))
	}
	_, err := fmt.Fprintln(w, tab)
	return err
}
