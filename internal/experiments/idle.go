package experiments

import (
	"fmt"
	"io"
	"time"

	"mds2/internal/core"
	"mds2/internal/grip"
	"mds2/internal/hostinfo"
	"mds2/internal/ldap"
	"mds2/internal/services"
)

func init() {
	register("idle", "E11 (§5.2): specialized idle-multicomputer directory — adaptive update strategy vs uniform polling", runIdle)
}

// runIdle reproduces the §5.2 example: "a directory designed to locate
// 'idle multicomputers' might maintain an index of only these resources,
// and then keep careful track of changing patterns of multicomputer load so
// as to maximize accuracy while minimizing query traffic." The adaptive
// tracker re-confirms comfortably idle machines lazily and watches busy or
// boundary machines closely; the baseline polls everyone uniformly fast.
func runIdle(w io.Writer) error {
	const (
		horizon     = 30 * time.Minute
		busyRefresh = 30 * time.Second
		idleRefresh = 5 * time.Minute
	)
	g, err := core.NewSimGrid(1100)
	if err != nil {
		return err
	}
	defer g.Close()
	dir, err := g.AddDirectory("dir", core.DirectoryOptions{Suffix: "vo=v"})
	if err != nil {
		return err
	}
	// A mix of comfortably idle big machines, loaded ones, and small boxes.
	specs := []struct {
		name   string
		cpus   int
		demand float64
	}{
		{"idle-a", 64, 0}, {"idle-b", 32, 0}, {"idle-c", 16, 0},
		{"busy-a", 64, 80}, {"busy-b", 32, 40},
		{"desktop", 2, 0},
	}
	var hosts []*core.HostNode
	for i, s := range specs {
		h, err := g.AddHost(s.name, core.HostOptions{
			Seed: int64(i + 1),
			Spec: hostinfo.Spec{OS: "linux", OSVer: "1", CPUType: "ia32",
				CPUCount: s.cpus, MemoryMB: 256 * s.cpus},
			DynamicTTL: -1,
		})
		if err != nil {
			return err
		}
		h.Host.SetDemand(s.demand)
		h.Host.Step(30 * time.Minute) // converge toward the demand
		h.RegisterWith(dir, "v", 10*time.Second, time.Hour)
		hosts = append(hosts, h)
	}
	if !waitCond(func() bool { return len(dir.GIIS.Children()) == len(specs) }) {
		return fmt.Errorf("idle: registrations did not settle")
	}

	dirClient, err := dir.Client("tracker")
	if err != nil {
		return err
	}
	defer dirClient.Close()
	tracker := services.NewIdleTracker(services.IdleTrackerConfig{
		Directory: dirClient,
		Base:      ldap.MustParseDN("vo=v"),
		ConnectProvider: func(url ldap.URL) (*grip.Client, error) {
			return g.Connect("tracker", url)
		},
		Clock:       g.Clock,
		IdleBelow:   0.6, // idle = under 60% utilization
		MinCPUs:     8,
		BusyRefresh: busyRefresh,
		IdleRefresh: idleRefresh,
	})
	if err := tracker.Discover(); err != nil {
		return err
	}

	// Drive the horizon; count queries issued by the adaptive tracker and
	// what a uniform fast poller would have issued for the same coverage.
	steps := int(horizon / busyRefresh)
	for i := 0; i < steps; i++ {
		tracker.Refresh()
		g.SimClock().Advance(busyRefresh)
		for _, h := range hosts {
			h.Host.Step(busyRefresh)
		}
	}
	adaptive := tracker.Queries.Value()
	uniform := int64(len(specs) * steps)

	idle := tracker.Idle()
	tab := NewTable(
		fmt.Sprintf("E11 — idle-multicomputer tracker over %v (adaptive %v busy / %v idle)",
			horizon, busyRefresh, idleRefresh),
		"metric", "adaptive tracker", "uniform 30s polling")
	tab.AddRow("provider queries issued", adaptive, uniform)
	tab.AddRow("queries saved", fmt.Sprintf("%.0f%%", 100*(1-float64(adaptive)/float64(uniform))), "—")
	fmt.Fprintln(w, tab)

	fmt.Fprintf(w, "idle multicomputers found (≥8 cpus, under 60%% utilization): ")
	for _, h := range idle {
		fmt.Fprintf(w, "%s(free=%d) ", h.Name, h.FreeCPUs)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "small machines are excluded from the index entirely; busy big machines")
	fmt.Fprintln(w, "are tracked closely, comfortably idle ones re-confirmed lazily (§5.2)")
	return nil
}
