package experiments

import (
	"fmt"
	"io"
	"time"

	"mds2/internal/core"
	"mds2/internal/ldap"
	"mds2/internal/ldap/ldif"
)

func init() {
	register("fig1", "Figure 1: overlapping VOs; a partitioned VO operates as two disjoint fragments", runFig1)
	register("fig2", "Figure 2: architecture overview — discovery at a directory, lookup at a provider", runFig2)
	register("fig3", "Figure 3: the LDAP data model example namespace for hostX", runFig3)
	register("fig4", "Figure 4: fault-tolerant registration — replicated directories converge; partitioned ones diverge and re-converge; convergence time vs refresh interval", runFig4)
	register("fig5", "Figure 5: hierarchical discovery — two centers plus an individual under one VO directory", runFig5)
}

// settle advances simulated time in steps, yielding to background
// goroutines so registration streams and sweeps run.
func settle(g *core.Grid, step time.Duration, n int) {
	for i := 0; i < n; i++ {
		g.SimClock().Advance(step)
		time.Sleep(2 * time.Millisecond)
	}
}

// waitCond polls a condition while real time passes (background goroutines
// deliver messages asynchronously even under the fake clock).
func waitCond(cond func() bool) bool {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return false
}

func runFig1(w io.Writer) error {
	g, err := core.NewSimGrid(101)
	if err != nil {
		return err
	}
	defer g.Close()

	// VO-A and VO-B with partially overlapping resources: shared1/shared2
	// participate in both (Figure 1's overlap).
	dirA, err := g.AddDirectory("dir-a", core.DirectoryOptions{Suffix: "vo=a"})
	if err != nil {
		return err
	}
	dirB1, err := g.AddDirectory("dir-b-east", core.DirectoryOptions{Suffix: "vo=b"})
	if err != nil {
		return err
	}
	dirB2, err := g.AddDirectory("dir-b-west", core.DirectoryOptions{Suffix: "vo=b"})
	if err != nil {
		return err
	}
	mkHost := func(name, org string) *core.HostNode {
		h, err := g.AddHost(name, core.HostOptions{Org: org})
		if err != nil {
			panic(err)
		}
		return h
	}
	east1, east2 := mkHost("east1", "east"), mkHost("east2", "east")
	west1 := mkHost("west1", "west")
	shared1, shared2 := mkHost("shared1", "mid"), mkHost("shared2", "mid")

	const refresh, ttl = 5 * time.Second, 20 * time.Second
	for _, h := range []*core.HostNode{east1, shared1, shared2} {
		h.RegisterWith(dirA, "a", refresh, ttl)
	}
	for _, h := range []*core.HostNode{east1, east2, west1, shared1, shared2} {
		h.RegisterWith(dirB1, "b", refresh, ttl)
		h.RegisterWith(dirB2, "b", refresh, ttl)
	}
	if !waitCond(func() bool {
		return len(dirA.GIIS.Children()) == 3 &&
			len(dirB1.GIIS.Children()) == 5 && len(dirB2.GIIS.Children()) == 5
	}) {
		return fmt.Errorf("fig1: initial registration did not settle")
	}

	tab := NewTable("Figure 1 — VO membership through a partition",
		"phase", "VO-A dir", "VO-B east dir", "VO-B west dir", "east query", "west query")

	query := func(d *core.DirectoryNode, from string) int {
		c, err := d.Client(from)
		if err != nil {
			return -1
		}
		defer c.Close()
		entries, err := c.Search(d.GIIS.Suffix(), "(objectclass=computer)")
		if err != nil {
			return -1
		}
		return len(entries)
	}
	row := func(phase string) {
		tab.AddRow(phase, len(dirA.GIIS.Children()), len(dirB1.GIIS.Children()),
			len(dirB2.GIIS.Children()), query(dirB1, "user-east"), query(dirB2, "user-west"))
	}
	row("connected")

	// Partition VO-B down the middle; VO-A (all east side) is unaffected.
	g.Net.SetPartitions(
		[]string{"dir-a", "dir-b-east", "east1", "east2", "shared1", "shared2", "user-east"},
		[]string{"dir-b-west", "west1", "user-west"},
	)
	settle(g, refresh, 6)
	row("partitioned")

	g.Net.Heal()
	settle(g, refresh, 3)
	waitCond(func() bool {
		return len(dirB1.GIIS.Children()) == 5 && len(dirB2.GIIS.Children()) == 5
	})
	row("healed")

	_, err = fmt.Fprintln(w, tab)
	return err
}

func runFig2(w io.Writer) error {
	g, err := core.NewSimGrid(102)
	if err != nil {
		return err
	}
	defer g.Close()
	dir, err := g.AddDirectory("dir", core.DirectoryOptions{Suffix: "vo=demo"})
	if err != nil {
		return err
	}
	var hosts []*core.HostNode
	for i := 0; i < 4; i++ {
		h, err := g.AddHost(fmt.Sprintf("p%d", i), core.HostOptions{Org: "site"})
		if err != nil {
			return err
		}
		h.RegisterWith(dir, "demo", 10*time.Second, time.Minute)
		hosts = append(hosts, h)
	}
	if !waitCond(func() bool { return len(dir.GIIS.Children()) == 4 }) {
		return fmt.Errorf("fig2: registrations did not settle")
	}
	user, err := dir.Client("user")
	if err != nil {
		return err
	}
	defer user.Close()

	// Discovery at the directory.
	found, err := user.Search(dir.GIIS.Suffix(), "(objectclass=computer)")
	if err != nil {
		return err
	}
	// Lookup direct at the first discovered provider.
	direct, err := hosts[0].Client("user")
	if err != nil {
		return err
	}
	defer direct.Close()
	entry, err := direct.Lookup(hosts[0].Suffix)
	if err != nil {
		return err
	}
	tab := NewTable("Figure 2 — discovery then lookup",
		"step", "protocol", "target", "result")
	tab.AddRow("register ×4", "GRRP", "aggregate directory", fmt.Sprintf("%d live children", len(dir.GIIS.Children())))
	tab.AddRow("discover", "GRIP search", "aggregate directory", fmt.Sprintf("%d computers", len(found)))
	tab.AddRow("lookup", "GRIP base search", "information provider", entry.DN.String())
	_, err = fmt.Fprintln(w, tab)
	return err
}

func runFig3(w io.Writer) error {
	host := ldap.NewEntry(ldap.MustParseDN("hn=hostX")).
		Add("objectclass", "computer").
		Add("hn", "hostX").
		Add("system", "mips irix")
	queue := ldap.NewEntry(ldap.MustParseDN("queue=default, hn=hostX")).
		Add("objectclass", "service", "queue").
		Add("queue", "default").
		Add("url", "gram://hostX/default").
		Add("dispatchtype", "immediate")
	perf := ldap.NewEntry(ldap.MustParseDN("perf=load5, hn=hostX")).
		Add("objectclass", "perf", "loadaverage").
		Add("perf", "load5").
		Add("period", "10").
		Add("load5", "3.2")
	store := ldap.NewEntry(ldap.MustParseDN("store=scratch, hn=hostX")).
		Add("objectclass", "storage", "filesystem").
		Add("store", "scratch").
		Add("free", "33515 MB").
		Add("path", "/disks/scratch1")
	entries := []*ldap.Entry{host, queue, perf, store}

	schema := ldap.NewGridSchema()
	for _, e := range entries {
		if err := schema.Validate(e); err != nil {
			return fmt.Errorf("fig3: %w", err)
		}
	}
	fmt.Fprintln(w, "Figure 3 — LDAP data model (all entries validate against the grid schema):")
	fmt.Fprintln(w)
	fmt.Fprintln(w, ldif.Marshal(entries))

	// Round-trip every entry through the real wire encoding.
	for _, e := range entries {
		msg := &ldap.Message{ID: 1, Op: &ldap.SearchResultEntry{Entry: e}}
		if _, err := ldap.ParseMessageBytes(msg.Encode()); err != nil {
			return fmt.Errorf("fig3: wire round trip: %w", err)
		}
	}
	fmt.Fprintln(w, "wire round-trip: ok (BER-framed LDAPv3 SearchResultEntry)")
	return nil
}

func runFig4(w io.Writer) error {
	tab := NewTable("Figure 4 — registration convergence after partition heal",
		"refresh interval", "TTL", "diverged during partition", "re-converged", "convergence time")
	for _, interval := range []time.Duration{5 * time.Second, 15 * time.Second, 30 * time.Second} {
		ttl := interval * 7 / 2
		diverged, reconverged, convTime, err := fig4Round(interval, ttl)
		if err != nil {
			return err
		}
		tab.AddRow(interval, ttl, diverged, reconverged, convTime)
	}
	_, err := fmt.Fprintln(w, tab)
	return err
}

func fig4Round(interval, ttl time.Duration) (diverged, reconverged bool, convTime time.Duration, err error) {
	g, err := core.NewSimGrid(104)
	if err != nil {
		return false, false, 0, err
	}
	defer g.Close()
	d1, err := g.AddDirectory("d1", core.DirectoryOptions{Suffix: "vo=b"})
	if err != nil {
		return false, false, 0, err
	}
	d2, err := g.AddDirectory("d2", core.DirectoryOptions{Suffix: "vo=b"})
	if err != nil {
		return false, false, 0, err
	}
	var hosts []*core.HostNode
	for i := 0; i < 4; i++ {
		h, err := g.AddHost(fmt.Sprintf("h%d", i), core.HostOptions{})
		if err != nil {
			return false, false, 0, err
		}
		h.RegisterWith(d1, "b", interval, ttl)
		h.RegisterWith(d2, "b", interval, ttl)
		hosts = append(hosts, h)
	}
	if !waitCond(func() bool {
		return len(d1.GIIS.Children()) == 4 && len(d2.GIIS.Children()) == 4
	}) {
		return false, false, 0, fmt.Errorf("fig4: registration did not settle")
	}
	// Partition d2 with half the hosts.
	g.Net.SetPartitions(
		[]string{"d1", "h0", "h1"},
		[]string{"d2", "h2", "h3"},
	)
	settle(g, interval, int(ttl/interval)+3)
	diverged = len(d1.GIIS.Children()) == 2 && len(d2.GIIS.Children()) == 2

	g.Net.Heal()
	healedAt := g.Clock.Now()
	for i := 0; i < 20; i++ {
		settle(g, interval/2, 1)
		if len(d1.GIIS.Children()) == 4 && len(d2.GIIS.Children()) == 4 {
			reconverged = true
			break
		}
	}
	convTime = g.Clock.Now().Sub(healedAt)
	return diverged, reconverged, convTime, nil
}

func runFig5(w io.Writer) error {
	g, err := core.NewSimGrid(105)
	if err != nil {
		return err
	}
	defer g.Close()
	vo, err := g.AddDirectory("vo-dir", core.DirectoryOptions{Suffix: "vo=alliance"})
	if err != nil {
		return err
	}
	c1, err := g.AddDirectory("c1-dir", core.DirectoryOptions{Suffix: "o=o1"})
	if err != nil {
		return err
	}
	c2, err := g.AddDirectory("c2-dir", core.DirectoryOptions{Suffix: "o=o2"})
	if err != nil {
		return err
	}
	const refresh, ttl = 10 * time.Second, time.Minute
	for _, r := range []string{"r1", "r2", "r3"} {
		h, err := g.AddHost(r+".o1", core.HostOptions{Org: "o1"})
		if err != nil {
			return err
		}
		h.RegisterWith(c1, "alliance", refresh, ttl)
	}
	for _, r := range []string{"r1", "r2"} {
		h, err := g.AddHost(r+".o2", core.HostOptions{Org: "o2"})
		if err != nil {
			return err
		}
		h.RegisterWith(c2, "alliance", refresh, ttl)
	}
	indiv, err := g.AddHost("r1.home", core.HostOptions{Org: "home"})
	if err != nil {
		return err
	}
	indiv.RegisterWith(vo, "alliance", refresh, ttl)
	c1.RegisterWith(vo, "alliance", refresh, ttl)
	c2.RegisterWith(vo, "alliance", refresh, ttl)

	if !waitCond(func() bool {
		return len(vo.GIIS.Children()) == 3 && len(c1.GIIS.Children()) == 3 &&
			len(c2.GIIS.Children()) == 2
	}) {
		return fmt.Errorf("fig5: hierarchy did not settle")
	}
	user, err := vo.Client("user")
	if err != nil {
		return err
	}
	defer user.Close()

	tab := NewTable("Figure 5 — hierarchical discovery",
		"search base", "scope note", "hosts found")
	count := func(base string) int {
		entries, err := user.Search(ldap.MustParseDN(base), "(objectclass=computer)")
		if err != nil {
			return -1
		}
		return len(entries)
	}
	tab.AddRow("vo=alliance", "whole VO (root search)", count("vo=alliance"))
	tab.AddRow("o=o1, vo=alliance", "scoped to center 1", count("o=o1, vo=alliance"))
	tab.AddRow("o=o2, vo=alliance", "scoped to center 2", count("o=o2, vo=alliance"))
	tab.AddRow("hn=r1.o1, o=o1, vo=alliance", "single resource", count("hn=r1.o1, o=o1, vo=alliance"))
	fmt.Fprintln(w, tab)

	// The name index at the VO level lists the registered services.
	idx, err := user.Search(ldap.MustParseDN("vo=alliance"), "(objectclass=mdsservice)")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "VO name index: %d service entries (1 self + %d children)\n",
		len(idx), len(vo.GIIS.Children()))
	return nil
}
