package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"mds2/internal/gsi"
	"mds2/internal/ldap"
	"mds2/internal/nws"
)

func init() {
	register("security", "E7 (§7): the four provider/directory trust postures — who sees which attributes", runSecurity)
	register("nws", "E8 (§4.1): non-enumerable NWS namespace — on-demand measurement and forecaster selection", runNWS)
}

// runSecurity renders the §7 posture matrix: for each of the four policy
// configurations, which attributes of a host entry each class of principal
// can see.
func runSecurity(w io.Writer) error {
	entry := ldap.NewEntry(ldap.MustParseDN("hn=hostX, o=grid")).
		Add("objectclass", "computer").
		Add("hn", "hostX").
		Add("system", "linux redhat 6.2").
		Add("load5", "0.7")

	anonymous := (*gsi.Principal)(nil)
	user := &gsi.Principal{Subject: "cn=user"}
	scheduler := &gsi.Principal{Subject: "cn=scheduler"}
	directory := &gsi.Principal{Subject: "cn=giis.vo", TrustedDirectory: true}

	policies := []struct {
		name string
		pol  *gsi.Policy
	}{
		{"trusted-directory", gsi.NewPolicy(gsi.PostureTrustedDirectory).
			Grant("anonymous", "objectclass", "system")},
		{"restricted", gsi.NewPolicy(gsi.PostureRestricted).
			Grant("*", "objectclass", "system"). // any authenticated principal
			Grant("cn=scheduler", "load5", "system")},
		{"existence-only", gsi.NewPolicy(gsi.PostureExistenceOnly)},
		{"open", gsi.NewPolicy(gsi.PostureOpen)},
	}

	view := func(pol *gsi.Policy, p *gsi.Principal) string {
		e := pol.Redact(p, entry)
		if e == nil {
			return "(hidden)"
		}
		if len(e.Attrs) == len(entry.Attrs) {
			return "all attributes"
		}
		names := make([]string, 0, len(e.Attrs))
		for _, a := range e.Attrs {
			names = append(names, a.Name)
		}
		return fmt.Sprintf("%v", names)
	}

	tab := NewTable("E7 — §7 policy postures: visible view of hn=hostX",
		"posture", "anonymous", "authenticated user", "cn=scheduler", "trusted directory")
	for _, pc := range policies {
		tab.AddRow(pc.name,
			view(pc.pol, anonymous), view(pc.pol, user),
			view(pc.pol, scheduler), view(pc.pol, directory))
	}
	fmt.Fprintln(w, tab)

	// The two-step query plan §7 describes: the directory knows OS type;
	// load requires re-authentication at the provider.
	restricted := policies[1].pol
	filter := ldap.MustParseFilter("(&(system=linux*)(load5<=1.0))")
	fmt.Fprintf(w, "restricted posture, filter %s:\n", filter)
	fmt.Fprintf(w, "  anonymous filter authorized: %v (must split the query)\n",
		restricted.FilterAuthorized(anonymous, filter, entry))
	fmt.Fprintf(w, "  scheduler filter authorized: %v (may query load directly)\n",
		restricted.FilterAuthorized(scheduler, filter, entry))
	return nil
}

// runNWS demonstrates the §4.1 worked example: bandwidth entries for
// arbitrary endpoint pairs are generated only when queried, and the
// forecaster battery converges on the best predictor for each link.
func runNWS(w io.Writer) error {
	svc := nws.NewService()
	t0 := time.Date(2001, 6, 1, 0, 0, 0, 0, time.UTC)

	pairs := [][2]string{
		{"lbl.gov", "anl.gov"},
		{"isi.edu", "anl.gov"},
		{"never.measured", "until.now"},
	}
	tab := NewTable("E8 — NWS on-demand links and forecaster selection (200 measurements each)",
		"link", "last bandwidth (Mbps)", "prediction (Mbps)", "chosen forecaster", "experiments run")
	for _, p := range pairs {
		var last float64
		for i := 0; i < 200; i++ {
			m := svc.Measure(p[0], p[1], t0.Add(time.Duration(i)*time.Minute))
			last = m.BandwidthMbps
		}
		pred, name, ok := svc.Forecast(p[0], p[1])
		if !ok {
			return fmt.Errorf("nws: no forecast for %v", p)
		}
		tab.AddRow(p[0]+"→"+p[1], last, pred, name, svc.Measured())
	}
	fmt.Fprintln(w, tab)

	// Per-forecaster accuracy on one link.
	if b, ok := svc.Battery("lbl.gov", "anl.gov"); ok {
		mse := b.MSE()
		acc := NewTable("forecaster battery MSE (lbl.gov→anl.gov)", "forecaster", "MSE")
		for _, name := range sortedKeys(mse) {
			acc.AddRow(name, mse[name])
		}
		fmt.Fprintln(w, acc)
	}
	fmt.Fprintln(w, "namespace is parametric: no link exists until a query names its endpoints (§4.1)")
	return nil
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
