// Package experiments reproduces, as executable scenarios, every figure of
// the paper and the quantitative claims its prose makes. Each experiment
// builds a deterministic simulated grid, drives it, and renders the
// outcome as a text table; cmd/mdsbench runs them by name and EXPERIMENTS.md
// records the expected shapes. See DESIGN.md §4 for the full index.
package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Runner executes one experiment, writing its report to w.
type Runner func(w io.Writer) error

var registry = map[string]struct {
	run   Runner
	descr string
}{}

func register(name, descr string, run Runner) {
	registry[name] = struct {
		run   Runner
		descr string
	}{run, descr}
}

// Names lists registered experiments in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Describe returns an experiment's one-line description.
func Describe(name string) string {
	if e, ok := registry[name]; ok {
		return e.descr
	}
	return ""
}

// Run executes the named experiment.
func Run(name string, w io.Writer) error {
	e, ok := registry[name]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	return e.run(w)
}

// RunAll executes every experiment in name order.
func RunAll(w io.Writer) error {
	for _, name := range Names() {
		fmt.Fprintf(w, "### %s — %s\n\n", name, Describe(name))
		if err := Run(name, w); err != nil {
			return fmt.Errorf("experiment %s: %w", name, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}
