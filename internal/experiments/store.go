package experiments

import (
	"fmt"
	"io"
	"time"

	"mds2/internal/ldap"
)

func init() {
	register("store", "store data plane: indexed Find vs full scan across directory sizes and query shapes", runStore)
}

// runStore measures the directory data plane directly: it loads stores of
// increasing size and times representative query shapes through the
// indexed Find against the retained linear-scan reference, reporting
// per-query latency and the speedup. This reproduces the regime of the
// MDS2 performance studies (query cost growing with directory size) and
// shows the indexed plane holding flat.
func runStore(w io.Writer) error {
	tab := NewTable(
		"store — indexed data plane vs linear scan (per-query latency)",
		"entries", "query", "indexed", "scan", "speedup")

	for _, n := range []int{1_000, 10_000} {
		s := ldap.NewStore()
		if err := s.Put(ldap.NewEntry(ldap.MustParseDN("o=grid")).
			Add("objectclass", "organization")); err != nil {
			return err
		}
		classes := []string{"computer", "storage", "network"}
		entries := make([]*ldap.Entry, 0, n)
		for i := 0; i < n; i++ {
			entries = append(entries, ldap.NewEntry(
				ldap.MustParseDN(fmt.Sprintf("hn=h%d, ou=g%d, o=grid", i, i%16))).
				Add("objectclass", classes[i%len(classes)]).
				Add("hn", fmt.Sprintf("h%d", i)).
				Add("load", fmt.Sprintf("%d", i%20)))
		}
		if err := s.PutAll(entries); err != nil {
			return err
		}

		base := ldap.MustParseDN("o=grid")
		group := ldap.MustParseDN("ou=g3, o=grid")
		queries := []struct {
			name   string
			base   ldap.DN
			scope  ldap.Scope
			filter string
		}{
			{"equality", base, ldap.ScopeWholeSubtree, fmt.Sprintf("(hn=h%d)", n/2)},
			{"and", base, ldap.ScopeWholeSubtree, fmt.Sprintf("(&(objectclass=computer)(hn=h%d))", n/3*3)},
			{"one-level", group, ldap.ScopeSingleLevel, ""},
			{"presence", base, ldap.ScopeWholeSubtree, "(hn=*)"},
		}
		// all is the flat corpus the pre-index Find effectively walked;
		// the scan column reproduces its per-entry scope+filter test.
		all := s.All()
		for _, q := range queries {
			var f *ldap.Filter
			if q.filter != "" {
				f = ldap.MustParseFilter(q.filter)
			}
			indexed := timePerQuery(func() { s.Find(q.base, q.scope, f) })
			scan := timePerQuery(func() {
				var out []*ldap.Entry
				for _, e := range all {
					if !e.DN.WithinScope(q.base, q.scope) {
						continue
					}
					if f != nil && !f.Matches(e) {
						continue
					}
					out = append(out, e)
				}
				ldap.SortEntries(out)
			})
			speedup := "-"
			if indexed > 0 {
				speedup = fmt.Sprintf("%.1fx", float64(scan)/float64(indexed))
			}
			tab.AddRow(n, q.name, indexed.Round(time.Microsecond/10),
				scan.Round(time.Microsecond/10), speedup)
		}
	}
	_, err := fmt.Fprintln(w, tab)
	return err
}

// timePerQuery runs fn repeatedly for a short fixed budget and returns the
// mean latency.
func timePerQuery(fn func()) time.Duration {
	const budget = 100 * time.Millisecond
	// Warm up once so lazily-built state doesn't skew the first sample.
	fn()
	var runs int
	start := time.Now()
	for time.Since(start) < budget {
		fn()
		runs++
	}
	return time.Since(start) / time.Duration(runs)
}
