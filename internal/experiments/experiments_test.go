package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestEveryExperimentRuns smoke-runs the complete experiment suite: each
// must complete without error and produce a non-trivial report. This is the
// regression net for the figure reproductions.
func TestEveryExperimentRuns(t *testing.T) {
	if len(Names()) < 10 {
		t.Fatalf("registry lost experiments: %v", Names())
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			var buf bytes.Buffer
			if err := Run(name, &buf); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if buf.Len() < 80 {
				t.Fatalf("%s: suspiciously short report:\n%s", name, buf.String())
			}
		})
	}
}

func TestRunUnknown(t *testing.T) {
	if err := Run("no-such-experiment", &bytes.Buffer{}); err == nil {
		t.Fatal("unknown experiment should error")
	}
	if Describe("no-such-experiment") != "" {
		t.Fatal("unknown describe should be empty")
	}
}

func TestDescriptions(t *testing.T) {
	for _, name := range Names() {
		if Describe(name) == "" {
			t.Errorf("%s lacks a description", name)
		}
	}
}

// Shape assertions: key monotonicity claims the paper makes must hold in
// the generated tables.

func TestDetectorShape(t *testing.T) {
	// At 30% loss, the 2-interval timeout must produce more false
	// positives than the 8-interval timeout.
	fp2 := falsePositives(0.30, 10e9, 20e9, 600)
	fp8 := falsePositives(0.30, 10e9, 80e9, 600)
	if fp2 <= fp8 {
		t.Errorf("false positives: 2×=%d should exceed 8×=%d", fp2, fp8)
	}
	// Detection latency grows with timeout.
	l2 := detectionLatency(0.10, 10e9, 20e9, 10).Mean()
	l8 := detectionLatency(0.10, 10e9, 80e9, 10).Mean()
	if l2 >= l8 {
		t.Errorf("latency: 2×=%v should be below 8×=%v", l2, l8)
	}
}

func TestFig4ConvergesForAllIntervals(t *testing.T) {
	diverged, reconverged, convTime, err := fig4Round(5e9, 17.5e9)
	if err != nil {
		t.Fatal(err)
	}
	if !diverged {
		t.Error("directories should diverge under partition")
	}
	if !reconverged {
		t.Error("directories should reconverge after heal")
	}
	if convTime <= 0 {
		t.Errorf("convergence time = %v", convTime)
	}
}

func TestGRISCacheReportMentionsAllTTLs(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("griscache", &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"off", "10s", "1m0s", "5m0s"} {
		if !strings.Contains(out, want) {
			t.Errorf("griscache report missing %q:\n%s", want, out)
		}
	}
}

func TestSecurityReportShapes(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("security", &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"trusted-directory", "restricted", "existence-only", "open", "(hidden)", "all attributes"} {
		if !strings.Contains(out, want) {
			t.Errorf("security report missing %q", want)
		}
	}
}
