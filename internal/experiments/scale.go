package experiments

import (
	"fmt"
	"io"
	"time"

	"mds2/internal/bloom"
	"mds2/internal/core"
	"mds2/internal/giis"
	"mds2/internal/gris"
	"mds2/internal/hostinfo"
	"mds2/internal/ldap"
	"mds2/internal/mds1"
	"mds2/internal/providers"
	"mds2/internal/softstate"
)

func init() {
	register("scope", "E3 (§3): directory scoping — chained operations per query, scoped vs exhaustive, vs provider count", runScope)
	register("mds1", "E4 (§11.1): centralized MDS-1 baseline vs federated MDS-2 — update load and staleness vs provider count", runMDS1)
	register("bloom", "E5 (§5.1): lossy Bloom-summary routing — summary size vs wasted chained queries", runBloom)
}

// runScope shows why "each aggregate directory defines a scope within which
// search operations take place": root searches visit every provider while
// scoped searches visit one, independent of grid size.
func runScope(w io.Writer) error {
	tab := NewTable(
		"E3 — chained provider operations per query (chaining GIIS)",
		"providers", "root search chains", "org-scoped chains", "single-host chains", "name-index chains")

	for _, n := range []int{4, 16, 64} {
		g, err := core.NewSimGrid(int64(300 + n))
		if err != nil {
			return err
		}
		dir, err := g.AddDirectory("dir", core.DirectoryOptions{Suffix: "vo=v"})
		if err != nil {
			g.Close()
			return err
		}
		// Providers spread across 4 organizations.
		for i := 0; i < n; i++ {
			org := fmt.Sprintf("org%d", i%4)
			h, err := g.AddHost(fmt.Sprintf("h%03d", i), core.HostOptions{Org: org})
			if err != nil {
				g.Close()
				return err
			}
			h.RegisterWith(dir, "v", 10*time.Second, time.Hour)
		}
		if !waitCond(func() bool { return len(dir.GIIS.Children()) == n }) {
			g.Close()
			return fmt.Errorf("scope: %d registrations did not settle", n)
		}
		user, err := dir.Client("user")
		if err != nil {
			g.Close()
			return err
		}
		chainsFor := func(base, filter string) int64 {
			before := dir.GIIS.ChainedOps.Value()
			if _, err := user.Search(ldap.MustParseDN(base), filter); err != nil {
				return -1
			}
			return dir.GIIS.ChainedOps.Value() - before
		}
		root := chainsFor("vo=v", "(objectclass=computer)")
		scoped := chainsFor("o=org1, vo=v", "(objectclass=computer)")
		single := chainsFor("hn=h001, o=org1, vo=v", "(objectclass=computer)")
		nameIdx := chainsFor("vo=v", "(objectclass=mdsservice)")
		// The name index never chains but the filter also reaches children
		// via chaining strategy; measure with scope one-level local only.
		tab.AddRow(n, root, scoped, single, nameIdx)
		user.Close()
		g.Close()
	}
	_, err := fmt.Fprintln(w, tab)
	return err
}

// runMDS1 contrasts the centralized architecture with federated MDS-2: the
// central database absorbs continuous update load from every resource and
// still serves stale answers, while MDS-2 pays per-query chaining for
// authoritative freshness.
func runMDS1(w io.Writer) error {
	const (
		horizon = 10 * time.Minute
		push    = 30 * time.Second // MDS-1 per-resource push interval
	)
	tab := NewTable(
		"E4 — centralized (MDS-1) vs federated (MDS-2), 10 simulated minutes",
		"providers", "mds1 pushes", "mds1 entries moved", "mds1 mean staleness",
		"mds2 chains/query", "mds2 staleness")

	for _, n := range []int{8, 32, 128} {
		clock := softstate.NewFakeClock()
		central := mds1.New(clock)
		fleet := hostinfo.NewFleet("host", n, int64(n))
		var pushers []*mds1.Pusher
		for _, h := range fleet.Hosts {
			suffix := ldap.MustParseDN("hn=" + h.Name + ", o=grid")
			p := mds1.NewPusher(suffix, providers.HostBackends(h, suffix), central, push, clock)
			p.Start()
			pushers = append(pushers, p)
		}
		// Run the clock; hosts evolve, pushers push. After each advance,
		// wait for the push wave to quiesce so the update-load numbers
		// reflect the architecture rather than goroutine scheduling.
		for t := time.Duration(0); t < horizon; t += push {
			clock.Advance(push)
			fleet.Step(push)
			prev := int64(-1)
			for central.Updates.Value() != prev {
				prev = central.Updates.Value()
				time.Sleep(2 * time.Millisecond)
			}
		}
		// Query staleness at a random moment mid-cycle.
		clock.Advance(push / 2)
		var totalAge time.Duration
		res := central.Search(ldap.MustParseDN("o=grid"), ldap.ScopeWholeSubtree,
			ldap.MustParseFilter("(objectclass=loadaverage)"))
		for _, e := range res {
			if age, ok := central.Staleness(e); ok {
				totalAge += age
			}
		}
		meanStale := time.Duration(0)
		if len(res) > 0 {
			meanStale = totalAge / time.Duration(len(res))
		}
		for _, p := range pushers {
			p.Stop()
		}

		// Federated: per-query chains equal the providers the query scope
		// touches; data is generated at query time (staleness bounded by
		// the provider cache TTL, 10s for dynamic data).
		tab.AddRow(n, central.Updates.Value(), central.EntriesPushed.Value(), meanStale,
			fmt.Sprintf("%d (root) / 1 (scoped)", n), "≤ provider cache TTL (10s)")
	}
	fmt.Fprintln(w, tab)
	fmt.Fprintln(w, "MDS-1's update load grows linearly with providers whether or not anyone queries;")
	fmt.Fprintln(w, "MDS-2 moves data only for queried scopes and serves it at provider freshness.")
	return nil
}

// runBloom sweeps Bloom-summary size against wasted chained queries, the
// E5 size/accuracy trade. It uses the strategy's routing machinery over an
// in-process corpus for precision, then confirms end-to-end behaviour.
func runBloom(w io.Writer) error {
	const (
		children = 64
		queries  = 500
	)
	// Build per-child vocabularies: a distinctive host name plus the ~40
	// attribute terms a real GRIS subtree contributes (host config, load,
	// filesystems, queues), which is what drives the summary's fill.
	childTerms := make([][]string, children)
	for i := range childTerms {
		terms := []string{
			fmt.Sprintf("hn=host%03d", i),
			"objectclass=computer", "objectclass=loadaverage",
			"objectclass=filesystem", "objectclass=queue",
			fmt.Sprintf("system=%s", []string{"linux redhat", "mips irix"}[i%2]),
			fmt.Sprintf("cpucount=%d", 2<<(i%4)),
			fmt.Sprintf("memorymb=%d", 512<<(i%4)),
		}
		for j := 0; j < 32; j++ {
			terms = append(terms, fmt.Sprintf("attr%02d=value-%03d-%02d", j, i, j))
		}
		childTerms[i] = terms
	}
	tab := NewTable(
		"E5 — Bloom-summary routing (64 children, ~40 terms each, 500 single-host queries)",
		"summary bits", "bytes/child", "chains issued", "wasted chains", "waste rate", "est. FPR")

	for _, bits := range []uint64{64, 128, 256, 1024, 4096} {
		filters := make([]*bloom.Filter, children)
		for i, terms := range childTerms {
			f := bloom.New(bits, 4)
			for _, t := range terms {
				f.Add(t)
			}
			filters[i] = f
		}
		chains, wasted := 0, 0
		var estFPR float64
		for _, f := range filters {
			estFPR += f.EstimatedFPR()
		}
		estFPR /= float64(children)
		for q := 0; q < queries; q++ {
			target := q % children
			term := fmt.Sprintf("hn=host%03d", target)
			for i, f := range filters {
				if f.Test(term) && f.Test("objectclass=computer") {
					chains++
					if i != target {
						wasted++
					}
				}
			}
		}
		tab.AddRow(bits, filters[0].SizeBytes(), chains, wasted,
			float64(wasted)/float64(chains), estFPR)
	}
	fmt.Fprintln(w, tab)

	// End-to-end confirmation on a small live grid.
	g, err := core.NewSimGrid(505)
	if err != nil {
		return err
	}
	defer g.Close()
	strategy := giis.NewBloomRouted(time.Hour, 1<<14)
	dir, err := g.AddDirectory("dir", core.DirectoryOptions{Suffix: "vo=v", Strategy: strategy})
	if err != nil {
		return err
	}
	for i := 0; i < 8; i++ {
		h, err := g.AddHost(fmt.Sprintf("bh%d", i), core.HostOptions{})
		if err != nil {
			return err
		}
		h.RegisterWith(dir, "v", 10*time.Second, time.Hour)
	}
	if !waitCond(func() bool { return len(dir.GIIS.Children()) == 8 }) {
		return fmt.Errorf("bloom: registrations did not settle")
	}
	user, err := dir.Client("user")
	if err != nil {
		return err
	}
	defer user.Close()
	// Warm summaries, then a targeted query chains once.
	if _, err := user.Search(ldap.MustParseDN("vo=v"), "(hn=bh0)"); err != nil {
		return err
	}
	before := dir.GIIS.ChainedOps.Value()
	if _, err := user.Search(ldap.MustParseDN("vo=v"), "(&(objectclass=computer)(hn=bh3))"); err != nil {
		return err
	}
	fmt.Fprintf(w, "live grid: targeted query chained to %d of 8 children (summaries routed the rest away)\n",
		dir.GIIS.ChainedOps.Value()-before)
	return nil
}

// Interface check: ttlOverride must remain a gris.Backend.
var _ gris.Backend = (*ttlOverride)(nil)
