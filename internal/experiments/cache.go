package experiments

import (
	"fmt"
	"io"
	"time"

	"mds2/internal/gris"
	"mds2/internal/hostinfo"
	"mds2/internal/ldap"
	"mds2/internal/providers"
	"mds2/internal/softstate"
)

func init() {
	register("griscache", "E2 (§10.3): GRIS result caching — provider intrusiveness and staleness vs cache TTL", runCache)
	register("pushpull", "E6 (§6): pull polling vs push subscription for monitoring — messages vs update latency", runPushPull)
}

// slowBackend wraps a backend, charging a fixed provider execution cost —
// the expensive invocation (process creation, sensor reading) whose
// intrusiveness §10.3's cache bounds.
type slowBackend struct {
	gris.Backend
	cost  time.Duration
	clock *softstate.FakeClock
	calls int
}

func (s *slowBackend) Entries(q *gris.Query) ([]*ldap.Entry, error) {
	s.calls++
	s.clock.Advance(s.cost) // provider execution consumes simulated time
	return s.Backend.Entries(q)
}

func runCache(w io.Writer) error {
	const (
		queries      = 2000
		queryGap     = time.Second
		providerCost = 50 * time.Millisecond
	)
	tab := NewTable(
		"E2 — per-provider cache TTL (2000 queries, 1/s; provider execution costs 50ms simulated)",
		"cache TTL", "provider invocations", "invocations/query", "mean data age")

	for _, ttl := range []time.Duration{0, time.Second, 10 * time.Second, 60 * time.Second, 300 * time.Second} {
		clock := softstate.NewFakeClock()
		host := hostinfo.New("h", hostinfo.Spec{OS: "linux", OSVer: "1", CPUType: "ia32",
			CPUCount: 4, MemoryMB: 1024}, 7)
		suffix := ldap.MustParseDN("hn=h, o=g")
		backend := &slowBackend{
			Backend: &providers.DynamicHost{Host: host, Base: suffix, TTL: ttl},
			cost:    providerCost,
			clock:   clock,
		}
		// A zero-TTL DynamicHost defaults to 10s, so wrap with an explicit
		// TTL override.
		srv := gris.New(gris.Config{Suffix: suffix, Clock: clock})
		srv.Register(&ttlOverride{Backend: backend, ttl: ttl})

		var ageSum time.Duration
		req := &ldap.SearchRequest{BaseDN: suffix.String(), Scope: ldap.ScopeWholeSubtree,
			Filter: ldap.MustParseFilter("(objectclass=loadaverage)")}
		lastInvocations := int64(0)
		var lastFetch time.Time
		for i := 0; i < queries; i++ {
			clock.Advance(queryGap)
			sink := &discard{}
			srv.Search(&ldap.Request{State: &ldap.ConnState{}}, req, sink)
			if srv.Invocations.Value() != lastInvocations {
				lastInvocations = srv.Invocations.Value()
				lastFetch = clock.Now()
			}
			ageSum += clock.Now().Sub(lastFetch)
		}
		label := ttl.String()
		if ttl == 0 {
			label = "off"
		}
		tab.AddRow(label, backend.calls, float64(backend.calls)/float64(queries),
			ageSum/time.Duration(queries))
	}
	_, err := fmt.Fprintln(w, tab)
	return err
}

// ttlOverride forces an exact CacheTTL (including zero).
type ttlOverride struct {
	gris.Backend
	ttl time.Duration
}

func (t *ttlOverride) CacheTTL() time.Duration { return t.ttl }

type discard struct{}

func (discard) SendEntry(*ldap.Entry, ...ldap.Control) error { return nil }
func (discard) SendReferral(...string) error                 { return nil }
