package experiments

import (
	"fmt"
	"io"
	"time"

	"mds2/internal/core"
	"mds2/internal/giis"
	"mds2/internal/hostinfo"
	"mds2/internal/ldap"
	"mds2/internal/ldap/ldif"
)

func init() {
	register("matchmake", "E9 (§5.3): pluggable search — Condor-style matchmaking behind the GRIP extension point", runMatchmake)
}

// runMatchmake mounts the matchmaker extension on a cached-index directory
// and issues the kind of ranked, cross-attribute request that the basic
// GRIP filter language cannot express (§4.2 excludes joins; §5.3 points to
// matchmaking as the alternative evaluation mechanism).
func runMatchmake(w io.Writer) error {
	g, err := core.NewSimGrid(909)
	if err != nil {
		return err
	}
	defer g.Close()

	index := giis.NewCachedIndex(time.Hour)
	dir, err := g.AddDirectory("dir", core.DirectoryOptions{
		Suffix:   "vo=v",
		Strategy: index,
		Extensions: map[string]giis.Extension{
			core.OIDMatchmake: core.MatchmakeExtension(index),
		},
	})
	if err != nil {
		return err
	}
	specs := []struct {
		name string
		cpus int
		arch string
	}{
		{"tiny", 2, "ia32"}, {"mid", 8, "ia32"}, {"big", 64, "mips"}, {"huge", 128, "mips"},
	}
	for i, s := range specs {
		h, err := g.AddHost(s.name, core.HostOptions{
			Seed: int64(i + 1),
			Spec: hostinfo.Spec{OS: "linux", OSVer: "1", CPUType: s.arch,
				CPUCount: s.cpus, MemoryMB: 256 * s.cpus},
		})
		if err != nil {
			return err
		}
		h.RegisterWith(dir, "v", 10*time.Second, time.Hour)
	}
	if !waitCond(func() bool { return len(dir.GIIS.Children()) == len(specs) }) {
		return fmt.Errorf("matchmake: registrations did not settle")
	}
	user, err := dir.Client("user")
	if err != nil {
		return err
	}
	defer user.Close()
	// Warm the index through a normal GRIP discovery.
	if _, err := user.Search(ldap.MustParseDN("vo=v"), "(objectclass=computer)"); err != nil {
		return err
	}

	tab := NewTable("E9 — matchmaking requests the LDAP filter language cannot express",
		"request", "matches (rank order)")
	ask := func(label, req string) error {
		out, err := user.Extended(core.OIDMatchmake, []byte(req))
		if err != nil {
			return err
		}
		entries, err := ldif.ParseString(string(out))
		if err != nil {
			return err
		}
		var names []string
		for _, e := range entries {
			names = append(names, e.First("hn"))
		}
		tab.AddRow(label, fmt.Sprintf("%v", names))
		return nil
	}
	if err := ask("≥8 CPUs, most memory per requested core first",
		"requirements: other.cpucount >= 8\nrank: other.memorymb / needcpus\nattr.needcpus: 8\n"); err != nil {
		return err
	}
	if err := ask("mips only, biggest first",
		"requirements: other.cputype == \"mips\"\nrank: other.cpucount\n"); err != nil {
		return err
	}
	if err := ask("impossible demand",
		"requirements: other.cpucount >= 100000\n"); err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, tab)
	return err
}
