package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Table renders experiment results as fixed-width text, the output format
// of cmd/mdsbench. Cells are stringified with %v; floats get 3 decimals.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; values are formatted immediately.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		case time.Duration:
			row[i] = v.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the formatted row count.
func (t *Table) Rows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	width := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		width[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(width) && len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(width) && len(cell) < width[i] {
				b.WriteString(strings.Repeat(" ", width[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
