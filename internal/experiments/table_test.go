package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestTableRendering(t *testing.T) {
	tab := NewTable("E2: cache TTL sweep", "ttl", "hit-rate", "latency")
	tab.AddRow("10s", 0.91234, 1500*time.Microsecond)
	tab.AddRow("longer-ttl-value", 1.0, time.Millisecond)
	out := tab.String()
	if !strings.Contains(out, "E2: cache TTL sweep") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "0.912") {
		t.Errorf("float formatting wrong:\n%s", out)
	}
	if !strings.Contains(out, "1.5ms") {
		t.Errorf("duration formatting wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // title, ===, header, ---, 2 rows
		t.Errorf("lines = %d:\n%s", len(lines), out)
	}
	if tab.Rows() != 2 {
		t.Errorf("rows = %d", tab.Rows())
	}
}

func TestTableNoTitle(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRow(1, 2)
	out := tab.String()
	if strings.HasPrefix(out, "\n") || strings.Contains(out, "=") {
		t.Errorf("unexpected title decoration:\n%s", out)
	}
}
