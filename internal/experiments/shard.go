package experiments

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"time"

	"mds2/internal/giis"
	"mds2/internal/gris"
	"mds2/internal/grrp"
	"mds2/internal/hostinfo"
	"mds2/internal/ldap"
	"mds2/internal/providers"
	"mds2/internal/shard"
	"mds2/internal/simnet"
	"mds2/internal/softstate"
)

// ShardOptions parameterizes the sharded-GIIS experiment (cmd/mdsbench
// flags). Defaults are sized for CI; the headline run is
//
//	mdsbench -exp shard -shard-pershard 250000 -shard-rings 1,2,4,8
//
// which places one million distinct providers on the 8-shard ring.
var ShardOptions = struct {
	PerShard int    // resident registrations per shard at every ring size
	Rings    string // comma-separated ring sizes to sweep
	Replicas int    // owners per registration (K)
	Queries  int    // routed lookups timed per ring size
	Live     int    // real GRIS providers among the synthetic population
}{PerShard: 1500, Rings: "1,2", Replicas: 2, Queries: 40, Live: 6}

func init() {
	register("shard", "sharded+replicated GIIS (§11.1 at scale): per-shard residency bound, flat lookup p99 vs ring size, shard-loss failover", runShard)
}

func parseRings(spec string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("shard: bad ring size %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("shard: empty ring sweep %q", spec)
	}
	return out, nil
}

// shardFleet is one ring of sharded GIIS replicas on a simulated network.
type shardFleet struct {
	clock   *softstate.FakeClock
	network *simnet.Network
	ring    *shard.Ring
	shards  map[string]*giis.Server
	strats  map[string]*giis.Sharded
	order   []string // member IDs, ring order
}

func newShardFleet(size, k int) *shardFleet {
	f := &shardFleet{
		clock:   softstate.NewFakeClock(),
		network: simnet.New(1),
		shards:  map[string]*giis.Server{},
		strats:  map[string]*giis.Sharded{},
	}
	members := make([]shard.Member, size)
	for i := range members {
		id := fmt.Sprintf("s%d", i)
		members[i] = shard.Member{ID: id,
			URL: ldap.MustParseURL(fmt.Sprintf("sim://%s-node:389", id))}
		f.order = append(f.order, id)
	}
	f.ring = shard.NewRing(members, 0)
	for _, m := range members {
		m := m
		st := giis.NewSharded(f.ring, m.ID, k)
		s := giis.New(giis.Config{
			Name: "giis." + m.ID, Suffix: ldap.MustParseDN("o=grid"),
			SelfURL: m.URL, Clock: f.clock, Strategy: st,
			Dial: func(url ldap.URL) (*ldap.Client, error) {
				conn, err := f.network.Dial(m.ID+"-node", url.Address())
				if err != nil {
					return nil, err
				}
				return ldap.NewClient(conn), nil
			},
		})
		srv := ldap.NewServer(s)
		l, err := f.network.Listen(m.ID+"-node", "389")
		if err != nil {
			panic(err)
		}
		go srv.Serve(l)
		f.shards[m.ID] = s
		f.strats[m.ID] = st
	}
	return f
}

func (f *shardFleet) close() {
	for _, s := range f.shards {
		s.Close()
	}
}

// place synthesizes n distinct provider registrations and batch-ingests each
// to its owners only — the registrar-side fan-out a real deployment does per
// message, amortized into one registry transaction per shard.
func (f *shardFleet) place(n int) {
	now := f.clock.Now()
	planner := f.strats[f.order[0]].Planner()
	batches := map[string][]*grrp.Message{}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("p%07d", i)
		m := &grrp.Message{
			Type:       grrp.TypeRegister,
			ServiceURL: "sim://" + name + "-node:389",
			MDSType:    "gris",
			SuffixDN:   fmt.Sprintf("hn=%s, o=site%d, o=grid", name, i%32),
			IssuedAt:   now,
			ValidUntil: now.Add(time.Hour),
		}
		for _, owner := range planner.Owners(m.SuffixDN) {
			batches[owner.ID] = append(batches[owner.ID], m)
		}
	}
	for id, batch := range batches {
		f.shards[id].IngestBatch(batch)
	}
}

// addLive starts a real GRIS on the network and registers it with every
// shard; the ownership check admits it only at its owners.
func (f *shardFleet) addLive(name string, seed int64) ldap.DN {
	h := hostinfo.New(name, hostinfo.Spec{
		OS: "linux redhat", OSVer: "6.2", CPUType: "ia32", CPUCount: 4, MemoryMB: 1024,
	}, seed)
	suffix := ldap.MustParseDN(fmt.Sprintf("hn=%s, o=live, o=grid", name))
	g := gris.New(gris.Config{Suffix: suffix, Clock: f.clock})
	for _, b := range providers.HostBackends(h, suffix) {
		g.Register(b)
	}
	srv := ldap.NewServer(g)
	l, err := f.network.Listen(name+"-node", "389")
	if err != nil {
		panic(err)
	}
	go srv.Serve(l)
	now := f.clock.Now()
	for _, s := range f.shards {
		s.Ingest(&grrp.Message{
			Type: grrp.TypeRegister, ServiceURL: "sim://" + name + "-node:389",
			MDSType: "gris", SuffixDN: suffix.String(),
			IssuedAt: now, ValidUntil: now.Add(time.Hour),
		})
	}
	return suffix
}

type countingSink struct{ entries int }

func (c *countingSink) SendEntry(*ldap.Entry, ...ldap.Control) error { c.entries++; return nil }
func (c *countingSink) SendReferral(...string) error                 { return nil }

// lookup runs one routed lookup (base names the provider, the GRIP pattern
// for "find this resource") from the given coordinator shard.
func (f *shardFleet) lookup(coordinator string, base ldap.DN) (int, ldap.Result, time.Duration) {
	sink := &countingSink{}
	req := &ldap.SearchRequest{
		BaseDN: base.String(), Scope: ldap.ScopeWholeSubtree,
		Filter: ldap.MustParseFilter("(objectclass=computer)"),
	}
	start := time.Now()
	res := f.shards[coordinator].Search(
		&ldap.Request{Ctx: context.Background(), State: &ldap.ConnState{}}, req, sink)
	return sink.entries, res, time.Since(start)
}

func quantile(d []time.Duration, q float64) time.Duration {
	if len(d) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), d...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// runShard grows a replicated ring at fixed per-shard load and shows the
// three §11.1-at-scale claims: residency stays under the 1.25·(N·K/R)
// balance bound, routed-lookup p99 stays flat as the ring (and with it the
// total provider population) grows, and losing a shard loses no keyed
// lookups because every registration has K owners.
func runShard(w io.Writer) error {
	rings, err := parseRings(ShardOptions.Rings)
	if err != nil {
		return err
	}
	k := ShardOptions.Replicas
	if k < 1 {
		k = 1
	}
	tab := NewTable(
		fmt.Sprintf("shard — sharded GIIS, fixed per-shard load %d, K=%d", ShardOptions.PerShard, k),
		"shards", "providers", "max resident", "bound 1.25*N*K/R", "lookup p50", "lookup p99")

	var failoverNote string
	for _, r := range rings {
		keff := k
		if keff > r {
			keff = r
		}
		n := ShardOptions.PerShard * r / keff // distinct providers
		f := newShardFleet(r, k)
		f.place(n - ShardOptions.Live)
		var liveSuffixes []ldap.DN
		for i := 0; i < ShardOptions.Live; i++ {
			liveSuffixes = append(liveSuffixes, f.addLive(fmt.Sprintf("live%02d", i), int64(i)))
		}

		maxResident := 0
		for _, s := range f.shards {
			if l := s.Receiver().Registry.Len(); l > maxResident {
				maxResident = l
			}
		}
		bound := int(1.25 * float64(n*keff) / float64(r))

		// Warm the per-shard key indexes and every coordinator's pooled peer
		// connections, then time routed lookups with the coordinator
		// rotating around the ring so most cross a shard boundary. Steady
		// state is what the p99 claim is about; connection establishment is
		// a one-time cost the pool amortizes away.
		for _, co := range f.order {
			for _, suffix := range liveSuffixes {
				f.lookup(co, suffix)
			}
		}

		// The whole ring lives in this one process, so the GC heap grows
		// with the TOTAL population even though each shard's residency is
		// fixed — a simulation artifact (deployed shards are separate
		// processes with constant heaps). Settle the post-placement heap and
		// hold the collector off during the short timed window so the
		// quantiles measure the routing path, not collector pauses over
		// co-resident shards' registries.
		runtime.GC()
		gcPrev := debug.SetGCPercent(-1)
		var durations []time.Duration
		for q := 0; q < ShardOptions.Queries; q++ {
			co := f.order[q%r]
			suffix := liveSuffixes[q%len(liveSuffixes)]
			entries, res, d := f.lookup(co, suffix)
			if res.Code != ldap.ResultSuccess || entries == 0 {
				debug.SetGCPercent(gcPrev)
				f.close()
				return fmt.Errorf("shard: ring=%d lookup %s via %s failed: %+v (%d entries)",
					r, suffix, co, res, entries)
			}
			durations = append(durations, d)
		}
		debug.SetGCPercent(gcPrev)
		tab.AddRow(r, n, maxResident, bound,
			quantile(durations, 0.50).Round(time.Microsecond),
			quantile(durations, 0.99).Round(time.Microsecond))

		// On the largest ring with real replication, kill a live host's
		// primary owner and look it up again from a non-owner.
		if r == rings[len(rings)-1] && r > keff {
			suffix := liveSuffixes[0]
			owners := f.strats[f.order[0]].Planner().Owners(suffix.String())
			owned := map[string]bool{}
			for _, m := range owners {
				owned[m.ID] = true
			}
			co := ""
			for _, id := range f.order {
				if !owned[id] {
					co = id
					break
				}
			}
			f.network.SetPartitions([]string{}, []string{owners[0].ID + "-node"})
			entries, res, _ := f.lookup(co, suffix)
			f.network.Heal()
			if res.Code == ldap.ResultSuccess && entries > 0 {
				failoverNote = fmt.Sprintf(
					"failover: ring=%d, shard %s killed, lookup of %s from %s answered by replica %s (%d entries, %d failovers)",
					r, owners[0].ID, suffix, co, owners[1].ID, entries,
					f.strats[co].PeerFailovers.Value())
			} else {
				failoverNote = fmt.Sprintf("failover: FAILED — %+v, %d entries", res, entries)
			}
		}
		f.close()
	}
	if _, err := fmt.Fprintln(w, tab); err != nil {
		return err
	}
	if failoverNote != "" {
		if _, err := fmt.Fprintln(w, failoverNote); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}
