package experiments

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"mds2/internal/giis"
	"mds2/internal/grip"
	"mds2/internal/gris"
	"mds2/internal/grrp"
	"mds2/internal/ldap"
	"mds2/internal/obs"
	"mds2/internal/softstate"
)

func init() {
	register("wire", "wire path: end-to-end GRIP throughput over real TCP — streamed GRIS searches and 2-level GIIS chaining", runWire)
}

// WireOptions tunes the wire experiment; cmd/mdsbench exposes them as
// flags. Zero values select the default sweep.
var WireOptions = struct {
	// Entries fixes the per-leaf entry count (0 sweeps defaults).
	Entries int
	// Concurrency fixes the concurrent client count (0 sweeps defaults).
	Concurrency int
	// Duration is the measurement window per cell.
	Duration time.Duration
	// ObsAddr, when non-empty, instruments the root GIIS of the 2-level
	// topology, serves the introspection endpoint there, and appends a
	// traced chained query's span tree to the report.
	ObsAddr string
}{Duration: time.Second}

// wireObs carries the root GIIS's observability hookup through the
// topology builders when WireOptions.ObsAddr is set.
type wireObs struct {
	reg    *obs.Registry
	tracer *obs.Tracer
}

// corpusBackend serves a fixed pre-built entry set: the wire experiment
// measures serialization and syscalls, so the provider itself must be free.
type corpusBackend struct {
	suffix  ldap.DN
	entries []*ldap.Entry
}

func (b *corpusBackend) Name() string                               { return "corpus" }
func (b *corpusBackend) Suffix() ldap.DN                            { return b.suffix }
func (b *corpusBackend) Attributes() []string                       { return nil }
func (b *corpusBackend) CacheTTL() time.Duration                    { return time.Hour }
func (b *corpusBackend) Entries(*gris.Query) ([]*ldap.Entry, error) { return b.entries, nil }

// wireEntries builds n host-shaped entries under suffix, sized like real
// GRIS output (half a dozen attributes, short values).
func wireEntries(suffix ldap.DN, n int) []*ldap.Entry {
	out := make([]*ldap.Entry, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, ldap.NewEntry(suffix.ChildAVA("hn", fmt.Sprintf("h%d", i))).
			Add("objectclass", "computer").
			Add("hn", fmt.Sprintf("h%d", i)).
			Add("system", "linux redhat").
			Add("cpucount", "4").
			Add("memsize", "2048").
			Add("load5", fmt.Sprintf("%d.%d", i%4, i%10)))
	}
	return out
}

// startWireGRIS serves a corpus-backed GRIS over loopback TCP.
func startWireGRIS(suffix ldap.DN, entries []*ldap.Entry) (string, func(), error) {
	g := gris.New(gris.Config{Suffix: suffix})
	g.Register(&corpusBackend{suffix: suffix, entries: entries})
	srv := ldap.NewServer(g)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	go srv.Serve(l)
	return l.Addr().String(), func() { srv.Close() }, nil
}

// startWireGIIS serves a chaining GIIS over loopback TCP with the given
// children registered (childSuffix[i] served at childAddr[i]). mods adjust
// the Config before the server starts (e.g. enabling the query cache); the
// returned Server lets callers read its counters after measurement.
func startWireGIIS(name string, suffix ldap.DN, childAddrs []string,
	childSuffixes []ldap.DN, childType string, o *wireObs,
	mods ...func(*giis.Config)) (string, *giis.Server, func(), error) {

	cfg := giis.Config{
		Name:   name,
		Suffix: suffix,
	}
	if o != nil {
		cfg.Obs = o.reg
	}
	for _, mod := range mods {
		mod(&cfg)
	}
	d := giis.New(cfg)
	now := time.Now()
	for i, addr := range childAddrs {
		msg := &grrp.Message{
			Type:       grrp.TypeRegister,
			ServiceURL: "ldap://" + addr,
			MDSType:    childType,
			SuffixDN:   childSuffixes[i].String(),
			IssuedAt:   now,
			ValidUntil: now.Add(time.Hour),
		}
		if !d.Ingest(msg) {
			d.Close()
			return "", nil, nil, fmt.Errorf("wire: %s refused registration of %s", name, addr)
		}
	}
	srv := ldap.NewServer(d)
	if o != nil {
		srv.Obs = o.reg
		srv.Tracer = o.tracer
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		d.Close()
		return "", nil, nil, err
	}
	go srv.Serve(l)
	stop := func() {
		srv.Close()
		d.Close()
	}
	return l.Addr().String(), d, stop, nil
}

type wireCell struct {
	queries  int64
	entries  int64
	allocs   int64 // mallocs per query, process-wide (client+server share it)
	p50, p99 time.Duration
}

// measureWire drives the service at addr with concurrent streamed
// whole-subtree searches for the configured window and reports throughput.
// Every query must stream exactly expect entries; a mismatch fails the
// experiment rather than reporting nonsense numbers.
func measureWire(addr string, base ldap.DN, filter string, clients int,
	window time.Duration, expect int) (wireCell, error) {

	conns := make([]*grip.Client, clients)
	for i := range conns {
		c, err := grip.Dial(addr)
		if err != nil {
			return wireCell{}, err
		}
		defer c.Close()
		c.SetTimeout(time.Minute)
		conns[i] = c
	}
	countQuery := func(c *grip.Client) (int, error) {
		n := 0
		err := c.SearchStream(base, filter, func(*ldap.Entry) error {
			n++
			return nil
		})
		return n, err
	}
	// Warmup: prime provider caches, GIIS child sets, and connection pools,
	// and verify the topology streams the expected result set.
	for _, c := range conns {
		n, err := countQuery(c)
		if err != nil {
			return wireCell{}, err
		}
		if n != expect {
			return wireCell{}, fmt.Errorf("wire: warmup streamed %d entries, want %d", n, expect)
		}
	}

	var (
		hist    obs.Histogram
		queries obs.Counter
		entries obs.Counter
		wg      sync.WaitGroup
		start   = make(chan struct{})
		failMu  sync.Mutex
		failErr error
	)
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	for _, c := range conns {
		wg.Add(1)
		go func(c *grip.Client) {
			defer wg.Done()
			<-start
			deadline := time.Now().Add(window)
			for time.Now().Before(deadline) {
				t0 := time.Now()
				n, err := countQuery(c)
				if err != nil {
					failMu.Lock()
					if failErr == nil {
						failErr = err
					}
					failMu.Unlock()
					return
				}
				hist.Observe(time.Since(t0))
				queries.Inc()
				entries.Add(int64(n))
			}
		}(c)
	}
	close(start)
	wg.Wait()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if failErr != nil {
		return wireCell{}, failErr
	}
	q := queries.Value()
	if q == 0 {
		return wireCell{}, fmt.Errorf("wire: no queries completed in %v", window)
	}
	p50, _ := hist.Quantile(0.50)
	p99, _ := hist.Quantile(0.99)
	return wireCell{
		queries: q,
		entries: entries.Value(),
		allocs:  int64(after.Mallocs-before.Mallocs) / q,
		p50:     p50,
		p99:     p99,
	}, nil
}

func runWire(w io.Writer) error {
	window := WireOptions.Duration
	if window <= 0 {
		window = time.Second
	}
	entrySweep := []int{100, 1000}
	if WireOptions.Entries > 0 {
		entrySweep = []int{WireOptions.Entries}
	}
	concSweep := []int{1, 8, 32}
	if WireOptions.Concurrency > 0 {
		concSweep = []int{WireOptions.Concurrency}
	}

	tab := NewTable(
		fmt.Sprintf("wire — end-to-end GRIP throughput over loopback TCP (%v per cell; allocs are process-wide: client+server)", window),
		"topology", "entries/query", "clients", "queries/s", "entries/s", "allocs/query", "p50", "p99")
	addRow := func(topology string, perQuery, clients int, cell wireCell) {
		secs := window.Seconds()
		tab.AddRow(topology, perQuery, clients,
			fmt.Sprintf("%.0f", float64(cell.queries)/secs),
			fmt.Sprintf("%.0f", float64(cell.entries)/secs),
			cell.allocs,
			cell.p50.Round(10*time.Microsecond),
			cell.p99.Round(10*time.Microsecond))
	}

	// Streamed-search workload: one GRIS, whole result set per query.
	for _, n := range entrySweep {
		suffix := ldap.MustParseDN("ou=s0, o=grid")
		addr, stop, err := startWireGRIS(suffix, wireEntries(suffix, n))
		if err != nil {
			return err
		}
		for _, clients := range concSweep {
			cell, err := measureWire(addr, suffix, "(objectclass=computer)", clients, window, n)
			if err != nil {
				stop()
				return err
			}
			addRow("gris-stream", n, clients, cell)
		}
		stop()
	}

	// 2-level GIIS chaining: top GIIS -> 2 mid GIIS -> 4 GRIS leaves; every
	// query fans out and the entries cross three wire hops.
	const leaves = 4
	for _, n := range entrySweep {
		perLeaf := n / leaves
		base := ldap.MustParseDN("o=grid")
		var stops []func()
		stopAll := func() {
			for i := len(stops) - 1; i >= 0; i-- {
				stops[i]()
			}
		}
		leafAddrs := make([]string, leaves)
		leafSuffixes := make([]ldap.DN, leaves)
		for i := 0; i < leaves; i++ {
			suffix := ldap.MustParseDN(fmt.Sprintf("ou=s%d, o=grid", i))
			addr, stop, err := startWireGRIS(suffix, wireEntries(suffix, perLeaf))
			if err != nil {
				stopAll()
				return err
			}
			stops = append(stops, stop)
			leafAddrs[i] = addr
			leafSuffixes[i] = suffix
		}
		// Mid tier traces too: the root trace then shows the chain
		// crossing both GIIS hops, not just the first fan-out.
		var wo *wireObs
		if WireOptions.ObsAddr != "" {
			wo = &wireObs{
				reg:    obs.NewRegistry(),
				tracer: obs.NewTracer(softstate.RealClock{}, 0),
			}
		}
		midAddrs := make([]string, 2)
		for i := 0; i < 2; i++ {
			addr, _, stop, err := startWireGIIS(fmt.Sprintf("giis.mid%d", i), base,
				leafAddrs[i*2:i*2+2], leafSuffixes[i*2:i*2+2], "gris", nil)
			if err != nil {
				stopAll()
				return err
			}
			stops = append(stops, stop)
			midAddrs[i] = addr
		}
		topAddr, _, stopTop, err := startWireGIIS("giis.top", base,
			midAddrs, []ldap.DN{base, base}, "giis", wo)
		if err != nil {
			stopAll()
			return err
		}
		stops = append(stops, stopTop)
		if wo != nil {
			if stopObs, err := serveWireObs(wo, w); err != nil {
				stopAll()
				return err
			} else {
				stops = append(stops, stopObs)
			}
		}
		for _, clients := range concSweep {
			cell, err := measureWire(topAddr, base, "(objectclass=computer)", clients, window, perLeaf*leaves)
			if err != nil {
				stopAll()
				return err
			}
			addRow("giis-2level", perLeaf*leaves, clients, cell)
		}
		if wo != nil {
			if err := wireTrace(topAddr, base, w); err != nil {
				stopAll()
				return err
			}
		}
		stopAll()
	}

	_, err := fmt.Fprintln(w, tab)
	return err
}

// serveWireObs exposes the root GIIS's introspection endpoint on
// WireOptions.ObsAddr for the lifetime of the topology.
func serveWireObs(wo *wireObs, w io.Writer) (func(), error) {
	h := obs.NewHandler(wo.reg, wo.tracer, softstate.RealClock{})
	l, err := net.Listen("tcp", WireOptions.ObsAddr)
	if err != nil {
		return nil, fmt.Errorf("wire: obs listener: %w", err)
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(l)
	fmt.Fprintf(w, "wire: observability for giis.top on http://%s\n", l.Addr())
	return func() { srv.Close() }, nil
}

// wireTrace runs one traced chained query against the root GIIS, checks the
// recent-trace ring answers over HTTP, and prints the span tree: the chain
// hop into each mid GIIS must appear under the root search span.
func wireTrace(topAddr string, base ldap.DN, w io.Writer) error {
	c, err := ldap.Dial(topAddr)
	if err != nil {
		return err
	}
	defer c.Close()
	res, err := c.SearchWith(&ldap.SearchRequest{
		BaseDN: base.String(),
		Scope:  ldap.ScopeWholeSubtree,
		Filter: ldap.MustParseFilter("(objectclass=computer)"),
	}, []ldap.Control{ldap.NewTraceControl("", 0)})
	if err != nil {
		return fmt.Errorf("wire: traced query: %w", err)
	}
	t, ok := ldap.TraceSpans(res.DoneControls)
	if !ok {
		return fmt.Errorf("wire: traced query returned no span control")
	}
	resp, err := http.Get("http://" + WireOptions.ObsAddr + "/debug/traces")
	if err != nil {
		return fmt.Errorf("wire: /debug/traces: %w", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if !strings.Contains(string(body), t.ID) {
		return fmt.Errorf("wire: trace %s missing from /debug/traces", t.ID)
	}
	fmt.Fprintf(w, "wire: trace %s (%d entries streamed, /debug/traces has it):\n%s\n",
		t.ID, len(res.Entries), obs.FormatSpanTree(t.Spans))
	return nil
}
