package experiments

// The query-cache experiment reproduces the shape of Zhang & Schopf's MDS
// performance study (PAPERS.md): aggregate-directory throughput and
// response time as a function of concurrent users, with and without result
// caching. A 2-level GIIS chain over real loopback TCP answers a hot
// whole-subtree query; the cached topology answers repeats from the
// internal/qcache result cache instead of re-fanning out to the leaves.

import (
	"fmt"
	"io"
	"net"
	"time"

	"mds2/internal/giis"
	"mds2/internal/gris"
	"mds2/internal/ldap"
)

func init() {
	register("cache", "query-result cache: 2-level GIIS chain over TCP — throughput and response time vs concurrent users, cached vs uncached", runQueryCache)
}

// QCacheOptions tunes the query-cache experiment; cmd/mdsbench exposes
// them as flags. Zero values select the default sweep.
var QCacheOptions = struct {
	// Entries fixes the per-query result size (0 = 200).
	Entries int
	// Concurrency fixes the concurrent client count (0 sweeps 1, 8, 32).
	Concurrency int
	// Duration is the measurement window per cell.
	Duration time.Duration
	// TTL is the query-cache TTL for the cached topology.
	TTL time.Duration
	// ProviderCost is the execution cost each leaf charges per provider
	// invocation, modelling the sensor/fork expense real GRIS providers
	// pay (the study this reproduces queried providers that fork per
	// invocation). Leaves run with provider caching off so the uncached
	// chain pays it on every query, exactly as E2's slowBackend does.
	ProviderCost time.Duration
}{Duration: time.Second, TTL: 15 * time.Second, ProviderCost: 5 * time.Millisecond}

// slowCorpus is a corpusBackend charging a fixed provider execution cost
// per invocation, with provider-side caching disabled (CacheTTL 0), so the
// cost is paid on every query that reaches the leaf.
type slowCorpus struct {
	corpusBackend
	cost time.Duration
}

func (b *slowCorpus) CacheTTL() time.Duration { return 0 }

func (b *slowCorpus) Entries(q *gris.Query) ([]*ldap.Entry, error) {
	time.Sleep(b.cost)
	return b.corpusBackend.Entries(q)
}

// startSlowGRIS serves a slowCorpus-backed GRIS over loopback TCP.
func startSlowGRIS(suffix ldap.DN, entries []*ldap.Entry, cost time.Duration) (string, func(), error) {
	g := gris.New(gris.Config{Suffix: suffix})
	g.Register(&slowCorpus{corpusBackend: corpusBackend{suffix: suffix, entries: entries}, cost: cost})
	srv := ldap.NewServer(g)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	go srv.Serve(l)
	return l.Addr().String(), func() { srv.Close() }, nil
}

// qcacheTopology builds the 2-level chain — top GIIS over 2 mid GIIS over
// 4 GRIS leaves — with mods applied to every GIIS tier, and returns the
// top's address and server (for cache counters).
func qcacheTopology(perLeaf int, mods ...func(*giis.Config)) (string, *giis.Server, func(), error) {
	const leaves = 4
	base := ldap.MustParseDN("o=grid")
	var stops []func()
	stopAll := func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
	}
	leafAddrs := make([]string, leaves)
	leafSuffixes := make([]ldap.DN, leaves)
	for i := 0; i < leaves; i++ {
		suffix := ldap.MustParseDN(fmt.Sprintf("ou=s%d, o=grid", i))
		addr, stop, err := startSlowGRIS(suffix, wireEntries(suffix, perLeaf), QCacheOptions.ProviderCost)
		if err != nil {
			stopAll()
			return "", nil, nil, err
		}
		stops = append(stops, stop)
		leafAddrs[i] = addr
		leafSuffixes[i] = suffix
	}
	midAddrs := make([]string, 2)
	for i := 0; i < 2; i++ {
		addr, _, stop, err := startWireGIIS(fmt.Sprintf("giis.mid%d", i), base,
			leafAddrs[i*2:i*2+2], leafSuffixes[i*2:i*2+2], "gris", nil, mods...)
		if err != nil {
			stopAll()
			return "", nil, nil, err
		}
		stops = append(stops, stop)
		midAddrs[i] = addr
	}
	topAddr, top, stopTop, err := startWireGIIS("giis.top", base,
		midAddrs, []ldap.DN{base, base}, "giis", nil, mods...)
	if err != nil {
		stopAll()
		return "", nil, nil, err
	}
	stops = append(stops, stopTop)
	return topAddr, top, stopAll, nil
}

func runQueryCache(w io.Writer) error {
	window := QCacheOptions.Duration
	if window <= 0 {
		window = time.Second
	}
	total := QCacheOptions.Entries
	if total <= 0 {
		total = 200
	}
	perLeaf := total / 4
	total = perLeaf * 4
	concSweep := []int{1, 8, 32}
	if QCacheOptions.Concurrency > 0 {
		concSweep = []int{QCacheOptions.Concurrency}
	}
	ttl := QCacheOptions.TTL
	if ttl <= 0 {
		ttl = 15 * time.Second
	}

	tab := NewTable(
		fmt.Sprintf("cache — hot query against a 2-level GIIS chain over loopback TCP (%d entries/query, %v per cell, cache TTL %v, leaf provider cost %v uncached-per-query)",
			total, window, ttl, QCacheOptions.ProviderCost),
		"topology", "clients", "queries/s", "p50", "p99", "cache hits")

	type cell struct {
		qps      float64
		p50, p99 time.Duration
	}
	base := ldap.MustParseDN("o=grid")
	run := func(cached bool) (map[int]cell, error) {
		var mods []func(*giis.Config)
		if cached {
			mods = append(mods, func(c *giis.Config) {
				c.QueryCache = true
				c.QueryCacheTTL = ttl
			})
		}
		topAddr, top, stop, err := qcacheTopology(perLeaf, mods...)
		if err != nil {
			return nil, err
		}
		defer stop()
		out := make(map[int]cell)
		for _, clients := range concSweep {
			m, err := measureWire(topAddr, base, "(objectclass=computer)", clients, window, total)
			if err != nil {
				return nil, err
			}
			c := cell{qps: float64(m.queries) / window.Seconds(), p50: m.p50, p99: m.p99}
			out[clients] = c
			hits := "-"
			if qc := top.QueryCache(); qc != nil {
				hits = fmt.Sprintf("%d", qc.Stats().Hits)
			}
			name := "chain-uncached"
			if cached {
				name = "chain-cached"
			}
			tab.AddRow(name, clients, fmt.Sprintf("%.0f", c.qps),
				c.p50.Round(10*time.Microsecond), c.p99.Round(10*time.Microsecond), hits)
		}
		return out, nil
	}

	uncached, err := run(false)
	if err != nil {
		return err
	}
	cached, err := run(true)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, tab); err != nil {
		return err
	}
	for _, clients := range concSweep {
		u, c := uncached[clients], cached[clients]
		if u.p50 <= 0 || c.p50 <= 0 || u.qps <= 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "cache: clients=%d speedup: %.1fx queries/s, %.1fx p50\n",
			clients, c.qps/u.qps, float64(u.p50)/float64(c.p50)); err != nil {
			return err
		}
	}
	return nil
}
