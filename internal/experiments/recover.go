package experiments

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"mds2/internal/giis"
	"mds2/internal/grrp"
	"mds2/internal/ldap"
	"mds2/internal/persist"
)

// RecoverOptions tunes the crash-recovery experiment (cmd/mdsbench flags).
var RecoverOptions = struct {
	// Registrations is the provider population registered before the crash.
	Registrations int
	// RefreshInterval is the providers' soft-state refresh cadence — the
	// bound a directory without persistence pays after a restart, since its
	// index stays empty until every provider's next refresh arrives.
	RefreshInterval time.Duration
	// Sync is the WAL fsync policy the child server runs with.
	Sync string
	// JSON, when non-empty, also writes the measurements as a JSON baseline
	// file (BENCH_recover.json).
	JSON string
	// Bin is the executable re-executed as the directory server; cmd/mdsbench
	// sets it to os.Executable(). Empty skips the experiment with a notice
	// (the in-test harness has no server binary to exec).
	Bin string
}{
	Registrations:   200,
	RefreshInterval: 3 * time.Second,
	Sync:            "always",
}

func init() {
	register("recover",
		"kill -9 a persisted GIIS mid-refresh-storm; time-to-first-correct-answer, WAL replay vs cold re-upload",
		runRecover)
}

// recoverSuffix is the namespace the child directory serves.
const recoverSuffix = "o=grid"

// RecoverServe is the hidden child mode of cmd/mdsbench: a GIIS with
// persistence enabled, serving on listen until killed. It prints one READY
// line (recovery stats) to stdout once state is rebuilt, before accepting
// traffic, so the parent can report replay figures.
func RecoverServe(dir, listen, syncMode string) error {
	mode, err := persist.ParseSyncMode(syncMode)
	if err != nil {
		return err
	}
	suffix := ldap.MustParseDN(recoverSuffix)
	selfURL, err := ldap.ParseURL("ldap://" + listen)
	if err != nil {
		return err
	}
	server := giis.New(giis.Config{
		Name:     "giis.recover",
		Suffix:   suffix,
		SelfURL:  selfURL,
		Strategy: giis.NewReferral(), // index answers only; never dials the fake providers
	})
	pm, err := persist.Open(persist.Options{
		Dir:           dir,
		Sync:          mode,
		RecoveryGrace: 2 * time.Minute,
		Codec: persist.PayloadCodec{
			Encode: grrp.EncodePayload,
			Decode: grrp.DecodePayload,
		},
	})
	if err != nil {
		return err
	}
	reg := server.Receiver().Registry
	var stats persist.RecoverStats
	if pm.HasState() {
		if stats, err = pm.Recover(nil, reg); err != nil {
			return err
		}
	}
	if err := pm.Attach(nil, reg); err != nil {
		return err
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	fmt.Printf("READY recovered=%d records=%d replay_ms=%.3f\n",
		stats.Registrations, stats.RecordsReplayed, float64(stats.Duration)/1e6)
	srv := ldap.NewServer(server)
	return srv.Serve(ln)
}

// recoverChild is one running child server process.
type recoverChild struct {
	cmd       *exec.Cmd
	ready     chan string // the READY line, once seen
	startedAt time.Time
}

func startRecoverChild(bin, dir, addr, syncMode string) (*recoverChild, error) {
	cmd := exec.Command(bin,
		"-recover-serve",
		"-recover-dir", dir,
		"-recover-listen", addr,
		"-recover-sync", syncMode)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	c := &recoverChild{cmd: cmd, ready: make(chan string, 1)}
	c.startedAt = time.Now()
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	go func() {
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "READY") {
				select {
				case c.ready <- line:
				default:
				}
			}
		}
	}()
	return c, nil
}

// kill delivers SIGKILL — the crash under test, no shutdown path runs.
func (c *recoverChild) kill() {
	_ = c.cmd.Process.Kill()
	_ = c.cmd.Wait()
}

// waitReady blocks for the child's READY line (post-recovery, pre-serve).
func (c *recoverChild) waitReady(timeout time.Duration) (string, error) {
	select {
	case line := <-c.ready:
		return line, nil
	case <-time.After(timeout):
		c.kill()
		return "", fmt.Errorf("recover: child not ready after %v", timeout)
	}
}

// registrationMsg builds provider i's GRRP registration.
func registrationMsg(i int, ttl time.Duration) *grrp.Message {
	now := time.Now()
	return &grrp.Message{
		Type:       grrp.TypeRegister,
		ServiceURL: fmt.Sprintf("ldap://provider-%03d.invalid:2135", i),
		MDSType:    "gris",
		SuffixDN:   fmt.Sprintf("hn=p%03d, %s", i, recoverSuffix),
		IssuedAt:   now,
		ValidUntil: now.Add(ttl),
	}
}

// sendRegistrations delivers msgs as LDAP adds (the MDS-2.1 GRRP binding)
// over one connection; errors are returned so storms racing a kill can
// ignore them.
func sendRegistrations(addr string, msgs []*grrp.Message) error {
	c, err := ldap.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	for _, m := range msgs {
		if err := c.Add(m.ToEntry()); err != nil {
			return err
		}
	}
	return nil
}

// queryChildSet returns the URLs in the directory's child index.
func queryChildSet(addr string) (map[string]bool, error) {
	c, err := ldap.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	res, err := c.Search(&ldap.SearchRequest{
		BaseDN: recoverSuffix,
		Scope:  ldap.ScopeSingleLevel,
		Filter: ldap.MustParseFilter("(objectclass=mdsservice)"),
	})
	if err != nil {
		return nil, err
	}
	out := map[string]bool{}
	for _, e := range res.Entries {
		leaf := e.DN.Leaf()
		if len(leaf) == 1 && strings.EqualFold(leaf[0].Attr, "mds-child") {
			out[e.First("url")] = true
		}
	}
	return out, nil
}

// waitCorrect polls the directory until its child index equals want,
// returning the elapsed time since start. This is the experiment's
// "time to first correct answer": not merely accepting connections, but
// again serving the full pre-crash registration set.
func waitCorrect(addr string, want map[string]bool, start time.Time, timeout time.Duration) (time.Duration, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		got, err := queryChildSet(addr)
		if err == nil && len(got) == len(want) {
			all := true
			for url := range want {
				if !got[url] {
					all = false
					break
				}
			}
			if all {
				return time.Since(start), nil
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	return 0, fmt.Errorf("recover: index not correct within %v", timeout)
}

func freeAddr() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

func runRecover(w io.Writer) error {
	opt := RecoverOptions
	if opt.Bin == "" {
		// Running under `go test` or another harness with no re-executable
		// server binary; the experiment needs a real process to SIGKILL.
		fmt.Fprintln(w, "recover: skipped — the crash-recovery experiment SIGKILLs a real child")
		fmt.Fprintln(w, "server process and needs a re-executable binary; run it via:")
		fmt.Fprintln(w, "    go run ./cmd/mdsbench -exp recover")
		return nil
	}
	n := opt.Registrations
	ttl := 2 * time.Minute
	dir, err := os.MkdirTemp("", "mds2-recover-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	walDir := filepath.Join(dir, "data")

	msgs := make([]*grrp.Message, n)
	want := map[string]bool{}
	for i := range msgs {
		msgs[i] = registrationMsg(i, ttl)
		want[msgs[i].ServiceURL] = true
	}

	// Phase 1: boot empty, absorb the full registration load, then keep a
	// refresh storm running and SIGKILL the server in the middle of it.
	addr, err := freeAddr()
	if err != nil {
		return err
	}
	child, err := startRecoverChild(opt.Bin, walDir, addr, opt.Sync)
	if err != nil {
		return err
	}
	if _, err := child.waitReady(10 * time.Second); err != nil {
		return err
	}
	if _, err := waitCorrect(addr, map[string]bool{}, time.Now(), 5*time.Second); err != nil {
		child.kill()
		return fmt.Errorf("recover: child never served: %w", err)
	}
	if err := sendRegistrations(addr, msgs); err != nil {
		child.kill()
		return err
	}
	if _, err := waitCorrect(addr, want, time.Now(), 10*time.Second); err != nil {
		child.kill()
		return err
	}
	stormDone := make(chan struct{})
	go func() {
		defer close(stormDone)
		// Refresh rounds until the kill severs the connection; mid-storm
		// errors are the point of the exercise.
		for {
			fresh := make([]*grrp.Message, n)
			for i := range fresh {
				fresh[i] = registrationMsg(i, ttl)
			}
			if err := sendRegistrations(addr, fresh); err != nil {
				return
			}
		}
	}()
	time.Sleep(150 * time.Millisecond) // let refreshes be in flight
	child.kill()
	<-stormDone

	// Phase 2: restart on the same directory; recovery replays snapshot +
	// WAL tail and the index is correct again without any provider talking.
	restartAt := time.Now()
	child, err = startRecoverChild(opt.Bin, walDir, addr, opt.Sync)
	if err != nil {
		return err
	}
	readyLine, err := child.waitReady(30 * time.Second)
	if err != nil {
		return err
	}
	recoverTTFCA, err := waitCorrect(addr, want, restartAt, 30*time.Second)
	child.kill()
	if err != nil {
		return err
	}

	// Phase 3 baseline: a directory without persistence restarts empty and
	// must wait for each provider's next soft-state refresh, phases spread
	// across the refresh interval — the paper's pure soft-state bound.
	coldDir := filepath.Join(dir, "cold")
	addr2, err := freeAddr()
	if err != nil {
		return err
	}
	child, err = startRecoverChild(opt.Bin, coldDir, addr2, opt.Sync)
	if err != nil {
		return err
	}
	if _, err := child.waitReady(10 * time.Second); err != nil {
		return err
	}
	coldStart := time.Now()
	go func() {
		for i, m := range msgs {
			phase := time.Duration(i) * opt.RefreshInterval / time.Duration(n)
			time.Sleep(time.Until(coldStart.Add(phase)))
			_ = sendRegistrations(addr2, []*grrp.Message{m})
		}
	}()
	coldTTFCA, err := waitCorrect(addr2, want, coldStart, opt.RefreshInterval+30*time.Second)
	child.kill()
	if err != nil {
		return err
	}

	t := NewTable(fmt.Sprintf("Crash recovery: %d registrations, wal-sync=%s (kill -9 mid-refresh-storm)",
		n, opt.Sync),
		"restart path", "time to first correct answer", "bound")
	t.AddRow("WAL replay", recoverTTFCA, strings.TrimPrefix(readyLine, "READY "))
	t.AddRow("cold re-upload", coldTTFCA,
		fmt.Sprintf("soft-state refresh interval %v", opt.RefreshInterval))
	fmt.Fprintln(w, t)
	fmt.Fprintf(w, "A durable directory answers correctly in %v; pure soft state waits ~the\n"+
		"refresh interval (%v here) for the provider population to re-announce.\n",
		recoverTTFCA.Round(time.Millisecond), coldTTFCA.Round(time.Millisecond))

	if opt.JSON != "" {
		type bench struct {
			Date            string  `json:"date"`
			Registrations   int     `json:"registrations"`
			SyncMode        string  `json:"sync_mode"`
			RecoverMs       float64 `json:"recover_ttfca_ms"`
			ColdMs          float64 `json:"cold_ttfca_ms"`
			RefreshInterval string  `json:"refresh_interval"`
			Ready           string  `json:"recovery_stats"`
		}
		b, err := json.MarshalIndent(bench{
			Date:            time.Now().UTC().Format("2006-01-02"),
			Registrations:   n,
			SyncMode:        opt.Sync,
			RecoverMs:       float64(recoverTTFCA) / 1e6,
			ColdMs:          float64(coldTTFCA) / 1e6,
			RefreshInterval: opt.RefreshInterval.String(),
			Ready:           strings.TrimPrefix(readyLine, "READY "),
		}, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(opt.JSON, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "baseline written to %s\n", opt.JSON)
	}
	return nil
}
