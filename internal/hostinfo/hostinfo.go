// Package hostinfo models the compute resources that GRIS information
// providers describe: static configuration (architecture, OS, CPU and
// memory inventory) and dynamic state (load averages, queue occupancy, free
// disk) evolving under a deterministic stochastic process. The paper's
// providers read /proc and batch schedulers; this synthetic model exercises
// the identical provider/cache/filter code paths with tunable dynamism
// (see DESIGN.md substitutions).
package hostinfo

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"
)

// Spec is a host's static configuration.
type Spec struct {
	OS       string // e.g. "linux redhat 6.2", "mips irix"
	OSVer    string
	CPUType  string
	CPUCount int
	MemoryMB int
}

// FS is one simulated filesystem.
type FS struct {
	Name    string
	Path    string
	TotalMB int
	FreeMB  int
}

// Queue is one simulated batch queue.
type Queue struct {
	Name     string
	Dispatch string // "immediate" or "batch"
	MaxJobs  int
	Running  int
	Queued   int
}

// Host is a synthetic machine whose dynamic state advances via Step. The
// load process is AR(1) around a diurnally modulated mean, which yields the
// bursty-but-correlated series that make cache-TTL tradeoffs (§10.3)
// interesting.
type Host struct {
	Name string
	Spec Spec

	mu      sync.Mutex
	rng     *rand.Rand
	simTime time.Time
	load1   float64
	load5   float64
	load15  float64
	fs      []FS
	queues  []Queue

	// Process parameters.
	baseLoad float64 // long-run mean load per CPU utilization ~ baseLoad*CPUCount
	phi      float64 // AR(1) persistence
	sigma    float64 // innovation scale
	// demand is externally injected load (running applications), added to
	// the process mean.
	demand float64
}

// New creates a host with the given name, spec, and deterministic seed.
func New(name string, spec Spec, seed int64) *Host {
	h := &Host{
		Name:     name,
		Spec:     spec,
		rng:      rand.New(rand.NewSource(seed)),
		simTime:  time.Date(2001, 6, 1, 0, 0, 0, 0, time.UTC),
		baseLoad: 0.35,
		phi:      0.9,
		sigma:    0.25,
	}
	h.load1 = h.meanLoad()
	h.load5, h.load15 = h.load1, h.load1
	h.fs = []FS{
		{Name: "scratch", Path: "/disks/scratch1", TotalMB: 40960, FreeMB: 33515},
		{Name: "home", Path: "/home", TotalMB: 8192, FreeMB: 2048},
	}
	h.queues = []Queue{
		{Name: "default", Dispatch: "immediate", MaxJobs: spec.CPUCount},
		{Name: "batch", Dispatch: "batch", MaxJobs: 4 * spec.CPUCount},
	}
	return h
}

// meanLoad is the diurnal target: busier during the simulated working day,
// plus any externally injected demand.
func (h *Host) meanLoad() float64 {
	hour := float64(h.simTime.Hour()) + float64(h.simTime.Minute())/60
	diurnal := 0.5 + 0.5*math.Sin((hour-10)/24*2*math.Pi)
	return h.baseLoad*float64(h.Spec.CPUCount)*(0.4+1.2*diurnal) + h.demand
}

// SetDemand injects external load (e.g. a running application's workers)
// into the host's load process; the load averages converge toward it.
func (h *Host) SetDemand(d float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if d < 0 {
		d = 0
	}
	h.demand = d
}

// Step advances the host's dynamic state by dt.
func (h *Host) Step(dt time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	steps := int(dt / time.Minute)
	if steps < 1 {
		steps = 1
	}
	for i := 0; i < steps; i++ {
		h.simTime = h.simTime.Add(time.Minute)
		mean := h.meanLoad()
		h.load1 = mean + h.phi*(h.load1-mean) + h.sigma*h.rng.NormFloat64()
		if h.load1 < 0 {
			h.load1 = 0
		}
		// Loads 5/15 as EWMAs of load1 with the classical decay constants.
		h.load5 += (h.load1 - h.load5) * (1 - math.Exp(-1.0/5))
		h.load15 += (h.load1 - h.load15) * (1 - math.Exp(-1.0/15))
		// Queue churn follows load.
		for qi := range h.queues {
			q := &h.queues[qi]
			target := int(h.load1)
			if target > q.MaxJobs {
				target = q.MaxJobs
			}
			if q.Running < target {
				q.Running++
			} else if q.Running > target {
				q.Running--
			}
			q.Queued = maxInt(0, q.Queued+h.rng.Intn(3)-1)
		}
		// Scratch space random walk, bounded.
		for fi := range h.fs {
			f := &h.fs[fi]
			f.FreeMB += h.rng.Intn(201) - 100
			if f.FreeMB < 0 {
				f.FreeMB = 0
			}
			if f.FreeMB > f.TotalMB {
				f.FreeMB = f.TotalMB
			}
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Snapshot is an immutable view of the host's state at one instant.
type Snapshot struct {
	Name   string
	Spec   Spec
	At     time.Time
	Load1  float64
	Load5  float64
	Load15 float64
	FS     []FS
	Queues []Queue
}

// Snapshot captures current state.
func (h *Host) Snapshot() Snapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return Snapshot{
		Name:   h.Name,
		Spec:   h.Spec,
		At:     h.simTime,
		Load1:  h.load1,
		Load5:  h.load5,
		Load15: h.load15,
		FS:     append([]FS(nil), h.fs...),
		Queues: append([]Queue(nil), h.queues...),
	}
}

// FreeCPUs estimates idle processors from the 5-minute load.
func (s Snapshot) FreeCPUs() int {
	free := s.Spec.CPUCount - int(math.Round(s.Load5))
	if free < 0 {
		return 0
	}
	return free
}

// Fleet is a convenience collection of hosts stepped together.
type Fleet struct {
	Hosts []*Host
}

// NewFleet builds n hosts named prefixN with varied specs, deterministic
// in seed.
func NewFleet(prefix string, n int, seed int64) *Fleet {
	specs := []Spec{
		{OS: "linux redhat", OSVer: "6.2", CPUType: "ia32", CPUCount: 2, MemoryMB: 1024},
		{OS: "linux redhat", OSVer: "7.0", CPUType: "ia32", CPUCount: 4, MemoryMB: 2048},
		{OS: "mips irix", OSVer: "6.5", CPUType: "mips", CPUCount: 64, MemoryMB: 16384},
		{OS: "sunos", OSVer: "5.8", CPUType: "sparc", CPUCount: 8, MemoryMB: 4096},
	}
	f := &Fleet{}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		spec := specs[rng.Intn(len(specs))]
		f.Hosts = append(f.Hosts, New(fmt.Sprintf("%s%03d", prefix, i), spec, rng.Int63()))
	}
	return f
}

// Step advances every host.
func (f *Fleet) Step(dt time.Duration) {
	for _, h := range f.Hosts {
		h.Step(dt)
	}
}
