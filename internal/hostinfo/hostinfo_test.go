package hostinfo

import (
	"testing"
	"time"
)

func linuxSpec() Spec {
	return Spec{OS: "linux redhat", OSVer: "6.2", CPUType: "ia32", CPUCount: 4, MemoryMB: 2048}
}

func TestDeterministicEvolution(t *testing.T) {
	a := New("h", linuxSpec(), 42)
	b := New("h", linuxSpec(), 42)
	for i := 0; i < 50; i++ {
		a.Step(time.Minute)
		b.Step(time.Minute)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	if sa.Load1 != sb.Load1 || sa.Load5 != sb.Load5 {
		t.Fatalf("same seed diverged: %v vs %v", sa.Load1, sb.Load1)
	}
	c := New("h", linuxSpec(), 43)
	c.Step(50 * time.Minute)
	if c.Snapshot().Load1 == sa.Load1 {
		t.Error("different seeds should diverge")
	}
}

func TestLoadStaysNonNegativeAndBounded(t *testing.T) {
	h := New("h", linuxSpec(), 7)
	for i := 0; i < 24*60; i++ { // one simulated day
		h.Step(time.Minute)
		s := h.Snapshot()
		if s.Load1 < 0 || s.Load5 < 0 || s.Load15 < 0 {
			t.Fatalf("negative load at step %d: %+v", i, s)
		}
		if s.Load1 > 10*float64(h.Spec.CPUCount) {
			t.Fatalf("implausible load %f", s.Load1)
		}
	}
}

func TestLoadAveragesSmooth(t *testing.T) {
	h := New("h", linuxSpec(), 7)
	var v1, v15 float64
	// Variance of load15 must be well below variance of load1.
	var sum1, sum15, sq1, sq15 float64
	const n = 600
	for i := 0; i < n; i++ {
		h.Step(time.Minute)
		s := h.Snapshot()
		sum1 += s.Load1
		sum15 += s.Load15
		sq1 += s.Load1 * s.Load1
		sq15 += s.Load15 * s.Load15
	}
	v1 = sq1/n - (sum1/n)*(sum1/n)
	v15 = sq15/n - (sum15/n)*(sum15/n)
	if v15 >= v1 {
		t.Errorf("load15 variance %f should be below load1 variance %f", v15, v1)
	}
}

func TestFilesystemBounds(t *testing.T) {
	h := New("h", linuxSpec(), 3)
	for i := 0; i < 5000; i++ {
		h.Step(time.Minute)
	}
	for _, f := range h.Snapshot().FS {
		if f.FreeMB < 0 || f.FreeMB > f.TotalMB {
			t.Fatalf("fs %s out of bounds: %d/%d", f.Name, f.FreeMB, f.TotalMB)
		}
	}
}

func TestQueueBounds(t *testing.T) {
	h := New("h", linuxSpec(), 3)
	for i := 0; i < 1000; i++ {
		h.Step(time.Minute)
		for _, q := range h.Snapshot().Queues {
			if q.Running < 0 || q.Running > q.MaxJobs || q.Queued < 0 {
				t.Fatalf("queue %s out of bounds: %+v", q.Name, q)
			}
		}
	}
}

func TestFreeCPUs(t *testing.T) {
	s := Snapshot{Spec: Spec{CPUCount: 8}, Load5: 3.4}
	if got := s.FreeCPUs(); got != 5 {
		t.Errorf("FreeCPUs = %d, want 5", got)
	}
	s.Load5 = 100
	if got := s.FreeCPUs(); got != 0 {
		t.Errorf("overloaded FreeCPUs = %d, want 0", got)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	h := New("h", linuxSpec(), 1)
	s := h.Snapshot()
	s.FS[0].FreeMB = -999
	s.Queues[0].Running = -999
	if h.Snapshot().FS[0].FreeMB == -999 || h.Snapshot().Queues[0].Running == -999 {
		t.Error("snapshot aliases host state")
	}
}

func TestFleet(t *testing.T) {
	f := NewFleet("node", 20, 9)
	if len(f.Hosts) != 20 {
		t.Fatalf("hosts = %d", len(f.Hosts))
	}
	names := map[string]bool{}
	for _, h := range f.Hosts {
		if names[h.Name] {
			t.Fatalf("duplicate host name %q", h.Name)
		}
		names[h.Name] = true
	}
	f.Step(10 * time.Minute)
	// Deterministic reconstruction.
	g := NewFleet("node", 20, 9)
	g.Step(10 * time.Minute)
	for i := range f.Hosts {
		if f.Hosts[i].Snapshot().Load1 != g.Hosts[i].Snapshot().Load1 {
			t.Fatal("fleet not deterministic")
		}
	}
}

func TestDiurnalCycle(t *testing.T) {
	// Mean load mid-afternoon should exceed mean load pre-dawn.
	h := New("h", linuxSpec(), 11)
	sumByHour := map[int]float64{}
	countByHour := map[int]int{}
	for day := 0; day < 5; day++ {
		for m := 0; m < 24*60; m++ {
			h.Step(time.Minute)
			s := h.Snapshot()
			sumByHour[s.At.Hour()] += s.Load1
			countByHour[s.At.Hour()]++
		}
	}
	afternoon := sumByHour[15] / float64(countByHour[15])
	predawn := sumByHour[4] / float64(countByHour[4])
	if afternoon <= predawn {
		t.Errorf("diurnal cycle missing: 15h=%f 4h=%f", afternoon, predawn)
	}
}
