// Package nws reproduces the Network Weather Service integration of §4.1:
// an information source that measures network links on demand and predicts
// future performance with a battery of forecasters, selecting whichever has
// been most accurate so far (the NWS "dynamic predictor selection"). The
// paper's bandwidth provider exposes a *non-enumerable* namespace — entries
// for links between arbitrary endpoints are generated lazily per query —
// and this package supplies exactly that behaviour to the GRIS backend.
package nws

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Measurement is one observation of a link.
type Measurement struct {
	BandwidthMbps float64
	LatencyMs     float64
	At            time.Time
}

// link holds the hidden true process for one endpoint pair.
type link struct {
	rng           *rand.Rand
	baseBandwidth float64
	baseLatency   float64
	bw            float64 // AR(1) state
	lat           float64
}

func newLink(src, dst string) *link {
	h := fnv.New64a()
	h.Write([]byte(src))
	h.Write([]byte{0})
	h.Write([]byte(dst))
	seed := int64(h.Sum64())
	rng := rand.New(rand.NewSource(seed))
	// Base characteristics derive deterministically from the endpoints, so
	// any (src,dst) pair has a well-defined link without enumeration.
	base := 10 + rng.Float64()*90 // 10..100 Mbps
	lat := 5 + rng.Float64()*120  // 5..125 ms
	return &link{rng: rng, baseBandwidth: base, baseLatency: lat, bw: base, lat: lat}
}

func (l *link) measure(at time.Time) Measurement {
	// AR(1) with multiplicative noise; clamped positive.
	l.bw = l.baseBandwidth + 0.8*(l.bw-l.baseBandwidth) + 0.1*l.baseBandwidth*l.rng.NormFloat64()
	if l.bw < 0.1 {
		l.bw = 0.1
	}
	l.lat = l.baseLatency + 0.8*(l.lat-l.baseLatency) + 0.05*l.baseLatency*l.rng.NormFloat64()
	if l.lat < 0.1 {
		l.lat = 0.1
	}
	return Measurement{BandwidthMbps: l.bw, LatencyMs: l.lat, At: at}
}

// Forecaster predicts the next value of a series from past updates.
type Forecaster interface {
	Name() string
	Update(v float64)
	// Predict returns the forecast for the next value; ok is false until
	// the forecaster has enough history.
	Predict() (float64, bool)
}

// LastValue predicts the most recent observation.
type LastValue struct {
	v   float64
	has bool
}

// Name implements Forecaster.
func (*LastValue) Name() string { return "last" }

// Update implements Forecaster.
func (f *LastValue) Update(v float64) { f.v, f.has = v, true }

// Predict implements Forecaster.
func (f *LastValue) Predict() (float64, bool) { return f.v, f.has }

// RunningMean predicts the mean of all history.
type RunningMean struct {
	sum float64
	n   int
}

// Name implements Forecaster.
func (*RunningMean) Name() string { return "mean" }

// Update implements Forecaster.
func (f *RunningMean) Update(v float64) { f.sum += v; f.n++ }

// Predict implements Forecaster.
func (f *RunningMean) Predict() (float64, bool) {
	if f.n == 0 {
		return 0, false
	}
	return f.sum / float64(f.n), true
}

// Window predicts the mean of the last K observations.
type Window struct {
	K    int
	ring []float64
	pos  int
	n    int
}

// NewWindow returns a K-sample sliding mean.
func NewWindow(k int) *Window { return &Window{K: k, ring: make([]float64, k)} }

// Name implements Forecaster.
func (f *Window) Name() string { return fmt.Sprintf("win%d", f.K) }

// Update implements Forecaster.
func (f *Window) Update(v float64) {
	f.ring[f.pos] = v
	f.pos = (f.pos + 1) % f.K
	if f.n < f.K {
		f.n++
	}
}

// Predict implements Forecaster.
func (f *Window) Predict() (float64, bool) {
	if f.n == 0 {
		return 0, false
	}
	sum := 0.0
	for i := 0; i < f.n; i++ {
		sum += f.ring[i]
	}
	return sum / float64(f.n), true
}

// Median predicts the median of the last K observations, robust to the
// outliers bursty networks produce.
type Median struct {
	K    int
	ring []float64
	pos  int
	n    int
}

// NewMedian returns a K-sample sliding median.
func NewMedian(k int) *Median { return &Median{K: k, ring: make([]float64, k)} }

// Name implements Forecaster.
func (f *Median) Name() string { return fmt.Sprintf("med%d", f.K) }

// Update implements Forecaster.
func (f *Median) Update(v float64) {
	f.ring[f.pos] = v
	f.pos = (f.pos + 1) % f.K
	if f.n < f.K {
		f.n++
	}
}

// Predict implements Forecaster.
func (f *Median) Predict() (float64, bool) {
	if f.n == 0 {
		return 0, false
	}
	tmp := append([]float64(nil), f.ring[:f.n]...)
	sort.Float64s(tmp)
	return tmp[len(tmp)/2], true
}

// ExpSmoothing predicts an exponentially weighted moving average.
type ExpSmoothing struct {
	Alpha float64
	v     float64
	has   bool
}

// NewExpSmoothing returns an EWMA forecaster with smoothing factor alpha.
func NewExpSmoothing(alpha float64) *ExpSmoothing { return &ExpSmoothing{Alpha: alpha} }

// Name implements Forecaster.
func (f *ExpSmoothing) Name() string { return fmt.Sprintf("ewma%.2f", f.Alpha) }

// Update implements Forecaster.
func (f *ExpSmoothing) Update(v float64) {
	if !f.has {
		f.v, f.has = v, true
		return
	}
	f.v += f.Alpha * (v - f.v)
}

// Predict implements Forecaster.
func (f *ExpSmoothing) Predict() (float64, bool) { return f.v, f.has }

// Battery runs several forecasters in parallel and predicts with whichever
// has the lowest mean squared error so far — the NWS selection strategy.
type Battery struct {
	members []Forecaster
	sqErr   []float64
	n       []int
	// pending holds each member's forecast made before the latest Update,
	// scored when the next truth arrives.
	pending []float64
	hasPred []bool
}

// NewBattery assembles the standard member set.
func NewBattery() *Battery {
	members := []Forecaster{
		&LastValue{}, &RunningMean{}, NewWindow(5), NewWindow(20),
		NewMedian(5), NewMedian(21), NewExpSmoothing(0.2), NewExpSmoothing(0.5),
	}
	return &Battery{
		members: members,
		sqErr:   make([]float64, len(members)),
		n:       make([]int, len(members)),
		pending: make([]float64, len(members)),
		hasPred: make([]bool, len(members)),
	}
}

// Update scores each member's outstanding forecast against the new truth,
// then feeds the truth to every member.
func (b *Battery) Update(v float64) {
	for i, m := range b.members {
		if b.hasPred[i] {
			d := b.pending[i] - v
			b.sqErr[i] += d * d
			b.n[i]++
		}
		m.Update(v)
		b.pending[i], b.hasPred[i] = m.Predict()
	}
}

// Predict returns the current best member's forecast and its name.
func (b *Battery) Predict() (float64, string, bool) {
	best := -1
	bestMSE := math.Inf(1)
	for i := range b.members {
		if !b.hasPred[i] {
			continue
		}
		mse := math.Inf(1)
		if b.n[i] > 0 {
			mse = b.sqErr[i] / float64(b.n[i])
		} else {
			mse = math.MaxFloat64 / 2 // unscored members rank last but are usable
		}
		if mse < bestMSE {
			bestMSE = mse
			best = i
		}
	}
	if best < 0 {
		return 0, "", false
	}
	return b.pending[best], b.members[best].Name(), true
}

// MSE returns the per-member mean squared errors (for the E8 report).
func (b *Battery) MSE() map[string]float64 {
	out := map[string]float64{}
	for i, m := range b.members {
		if b.n[i] > 0 {
			out[m.Name()] = b.sqErr[i] / float64(b.n[i])
		}
	}
	return out
}

// Service is the NWS facade the GRIS network backend queries: measurements
// and forecasts for links between arbitrary named endpoints, generated
// lazily per request.
type Service struct {
	mu        sync.Mutex
	links     map[string]*link
	batteries map[string]*Battery
	measured  int
}

// NewService returns an empty service.
func NewService() *Service {
	return &Service{links: map[string]*link{}, batteries: map[string]*Battery{}}
}

func linkKey(src, dst string) string { return src + "\x00" + dst }

// Measure performs (simulates) one experiment on the src→dst link and
// feeds the forecasters.
func (s *Service) Measure(src, dst string, at time.Time) Measurement {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := linkKey(src, dst)
	l, ok := s.links[key]
	if !ok {
		l = newLink(src, dst)
		s.links[key] = l
		s.batteries[key] = NewBattery()
	}
	m := l.measure(at)
	s.batteries[key].Update(m.BandwidthMbps)
	s.measured++
	return m
}

// Forecast returns the battery's bandwidth prediction for the link, and the
// name of the forecaster that produced it. ok is false when the link has
// never been measured.
func (s *Service) Forecast(src, dst string) (pred float64, forecaster string, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, exists := s.batteries[linkKey(src, dst)]
	if !exists {
		return 0, "", false
	}
	return b.Predict()
}

// Measured returns the number of experiments run (providers use it to show
// queries trigger measurements rather than database reads).
func (s *Service) Measured() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.measured
}

// Battery exposes the per-link battery for experiment reporting.
func (s *Service) Battery(src, dst string) (*Battery, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.batteries[linkKey(src, dst)]
	return b, ok
}
