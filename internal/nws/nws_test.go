package nws

import (
	"math"
	"testing"
	"time"
)

var t0 = time.Date(2001, 6, 1, 0, 0, 0, 0, time.UTC)

func TestMeasurementsPositiveAndStationary(t *testing.T) {
	s := NewService()
	var sum float64
	const n = 500
	for i := 0; i < n; i++ {
		m := s.Measure("ufl.edu", "anl.gov", t0.Add(time.Duration(i)*time.Minute))
		if m.BandwidthMbps <= 0 || m.LatencyMs <= 0 {
			t.Fatalf("non-positive measurement %+v", m)
		}
		sum += m.BandwidthMbps
	}
	mean := sum / n
	if mean < 5 || mean > 150 {
		t.Errorf("mean bandwidth %f outside plausible band", mean)
	}
	if s.Measured() != n {
		t.Errorf("measured = %d", s.Measured())
	}
}

func TestLinksAreDeterministicPerEndpointPair(t *testing.T) {
	a, b := NewService(), NewService()
	for i := 0; i < 20; i++ {
		ma := a.Measure("x", "y", t0)
		mb := b.Measure("x", "y", t0)
		if ma.BandwidthMbps != mb.BandwidthMbps {
			t.Fatal("same endpoints diverged across services")
		}
	}
	// Direction matters (asymmetric routes).
	m1 := a.Measure("x", "y", t0)
	m2 := a.Measure("y", "x", t0)
	if m1.BandwidthMbps == m2.BandwidthMbps {
		t.Error("reverse link should be an independent process")
	}
}

func TestNonEnumerableNamespace(t *testing.T) {
	// Any endpoint pair works with no prior registration — the §4.1
	// lazily generated parametric namespace.
	s := NewService()
	pairs := [][2]string{{"a", "b"}, {"never.seen", "before.example"}, {"x", "x"}}
	for _, p := range pairs {
		if m := s.Measure(p[0], p[1], t0); m.BandwidthMbps <= 0 {
			t.Fatalf("pair %v unusable", p)
		}
	}
	// Forecast before measurement reports !ok.
	if _, _, ok := s.Forecast("un", "measured"); ok {
		t.Error("forecast without history should fail")
	}
}

func TestForecastAfterMeasurements(t *testing.T) {
	s := NewService()
	for i := 0; i < 100; i++ {
		s.Measure("src", "dst", t0.Add(time.Duration(i)*time.Minute))
	}
	pred, name, ok := s.Forecast("src", "dst")
	if !ok || name == "" {
		t.Fatal("forecast unavailable")
	}
	if pred <= 0 || pred > 300 {
		t.Errorf("prediction %f implausible", pred)
	}
}

func TestForecasterBasics(t *testing.T) {
	lv := &LastValue{}
	if _, ok := lv.Predict(); ok {
		t.Error("empty LastValue should not predict")
	}
	lv.Update(5)
	if v, ok := lv.Predict(); !ok || v != 5 {
		t.Errorf("LastValue = %f", v)
	}

	rm := &RunningMean{}
	for _, v := range []float64{2, 4, 6} {
		rm.Update(v)
	}
	if v, _ := rm.Predict(); v != 4 {
		t.Errorf("RunningMean = %f", v)
	}

	w := NewWindow(2)
	for _, v := range []float64{1, 100, 200} {
		w.Update(v)
	}
	if v, _ := w.Predict(); v != 150 {
		t.Errorf("Window = %f", v)
	}

	med := NewMedian(3)
	for _, v := range []float64{10, 1000, 20} {
		med.Update(v)
	}
	if v, _ := med.Predict(); v != 20 {
		t.Errorf("Median = %f", v)
	}

	ew := NewExpSmoothing(0.5)
	ew.Update(0)
	ew.Update(10)
	if v, _ := ew.Predict(); v != 5 {
		t.Errorf("ExpSmoothing = %f", v)
	}
}

func TestForecasterNamesDistinct(t *testing.T) {
	b := NewBattery()
	seen := map[string]bool{}
	for _, m := range b.members {
		if seen[m.Name()] {
			t.Fatalf("duplicate forecaster name %q", m.Name())
		}
		seen[m.Name()] = true
	}
}

func TestBatteryPicksAccurateForecaster(t *testing.T) {
	// Constant series: every forecaster converges; battery must predict the
	// constant.
	b := NewBattery()
	for i := 0; i < 50; i++ {
		b.Update(42)
	}
	pred, name, ok := b.Predict()
	if !ok || math.Abs(pred-42) > 1e-9 {
		t.Fatalf("battery on constant series: %f via %s", pred, name)
	}
}

func TestBatteryBeatsWorstMember(t *testing.T) {
	// Trending series: the running mean lags badly; the battery's choice
	// must have MSE no worse than the running mean's.
	b := NewBattery()
	var batterySqErr, meanSqErr float64
	n := 0
	ref := &RunningMean{}
	for i := 0; i < 300; i++ {
		truth := float64(i) // steadily rising
		if pred, _, ok := b.Predict(); ok {
			d := pred - truth
			batterySqErr += d * d
		}
		if pred, ok := ref.Predict(); ok {
			d := pred - truth
			meanSqErr += d * d
			n++
		}
		b.Update(truth)
		ref.Update(truth)
	}
	if n == 0 || batterySqErr >= meanSqErr {
		t.Errorf("battery MSE %f should beat running-mean MSE %f", batterySqErr, meanSqErr)
	}
}

func TestBatteryMSEReport(t *testing.T) {
	b := NewBattery()
	for i := 0; i < 30; i++ {
		b.Update(float64(i % 5))
	}
	mse := b.MSE()
	if len(mse) == 0 {
		t.Fatal("no MSE entries")
	}
	for name, v := range mse {
		if v < 0 || math.IsNaN(v) {
			t.Errorf("%s MSE = %f", name, v)
		}
	}
}

func TestBatteryEmpty(t *testing.T) {
	b := NewBattery()
	if _, _, ok := b.Predict(); ok {
		t.Error("empty battery should not predict")
	}
}

func BenchmarkMeasure(b *testing.B) {
	s := NewService()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Measure("src", "dst", t0)
	}
}
