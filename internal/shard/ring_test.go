package shard

import (
	"fmt"
	"testing"

	"mds2/internal/ldap"
)

func testMembers(n int) []Member {
	out := make([]Member, n)
	for i := range out {
		id := fmt.Sprintf("s%02d", i)
		out[i] = Member{ID: id, URL: ldap.MustParseURL(fmt.Sprintf("sim://%s-node:389", id))}
	}
	return out
}

func TestRingOwnersDistinctAndStable(t *testing.T) {
	ring := NewRing(testMembers(8), 0)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("hn=h%04d", i)
		owners := ring.Owners(key, 2)
		if len(owners) != 2 {
			t.Fatalf("key %s: got %d owners, want 2", key, len(owners))
		}
		if owners[0].ID == owners[1].ID {
			t.Fatalf("key %s: owners not distinct: %v", key, owners)
		}
		again := ring.Owners(key, 2)
		if owners[0].ID != again[0].ID || owners[1].ID != again[1].ID {
			t.Fatalf("key %s: placement not stable: %v vs %v", key, owners, again)
		}
	}
}

func TestRingOrderIndependence(t *testing.T) {
	ms := testMembers(5)
	reversed := make([]Member, len(ms))
	for i, m := range ms {
		reversed[len(ms)-1-i] = m
	}
	a, b := NewRing(ms, 64), NewRing(reversed, 64)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("hn=h%03d", i)
		oa, ob := a.Owners(key, 3), b.Owners(key, 3)
		for j := range oa {
			if oa[j].ID != ob[j].ID {
				t.Fatalf("key %s: member order changed placement: %v vs %v", key, oa, ob)
			}
		}
	}
}

func TestRingEmptyKeyBroadcasts(t *testing.T) {
	ring := NewRing(testMembers(4), 0)
	if got := len(ring.Owners("", 2)); got != 4 {
		t.Fatalf("empty key owners = %d, want all 4", got)
	}
	for _, m := range ring.Members() {
		if !ring.Owns(m.ID, "", 2) {
			t.Fatalf("member %s should own broadcast key", m.ID)
		}
	}
}

func TestRingKClamped(t *testing.T) {
	ring := NewRing(testMembers(3), 0)
	if got := len(ring.Owners("hn=x", 8)); got != 3 {
		t.Fatalf("k beyond ring size: got %d owners, want 3", got)
	}
	if got := len(ring.Owners("hn=x", 0)); got != 1 {
		t.Fatalf("k=0: got %d owners, want 1", got)
	}
}

// TestRingBalance pins the load-balance property the 1.25·(N·K/shards)
// acceptance bound depends on: with default vnodes, no shard owns more
// than 25% above the mean.
func TestRingBalance(t *testing.T) {
	const n, k, shards = 100000, 2, 8
	ring := NewRing(testMembers(shards), 0)
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		for _, m := range ring.Owners(fmt.Sprintf("hn=h%06d", i), k) {
			counts[m.ID]++
		}
	}
	mean := float64(n*k) / shards
	for id, c := range counts {
		if float64(c) > 1.25*mean {
			t.Fatalf("shard %s holds %d keys, above 1.25x mean %.0f", id, c, mean)
		}
	}
}

func TestParseRing(t *testing.T) {
	ms, err := ParseRing("s0=ldap://a:2136, s1=ldap://b:2136")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[0].ID != "s0" || ms[1].URL.Address() != "b:2136" {
		t.Fatalf("unexpected parse: %+v", ms)
	}
	for _, bad := range []string{"", "nourl", "s0=://x", "s0=ldap://a:1,s0=ldap://b:2"} {
		if _, err := ParseRing(bad); err == nil {
			t.Fatalf("ParseRing(%q) should fail", bad)
		}
	}
}
