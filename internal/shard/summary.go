package shard

import (
	"strings"

	"mds2/internal/ldap"
)

// Shard summaries are Bloom filters over the namespace terms of a shard's
// registered children: every "attr=value" AVA of every child's suffix DN.
// A peer consults another shard's summary before scatter fan-out — if a
// query's required terms cannot all be present, the shard cannot hold a
// matching provider and the chained query is skipped (§5.1 lossy
// aggregation, after the Service Discovery Service).
//
// Soundness rests on a naming convention, so the testable vocabulary is
// restricted: only query terms on SummaryAttrs attributes are consulted,
// and SummaryAttrs must be attributes whose values are namespace-carried —
// any entry with attr=value lives under a provider whose suffix DN contains
// that AVA (true of "hn" host naming and "o" organization placement in the
// MDS data model). Terms outside the vocabulary fail open: the peer is
// queried anyway. False positives cost one wasted chained query; false
// negatives cannot occur for conforming attributes.

// DefaultSummaryAttrs is the namespace-carried vocabulary consulted when a
// strategy configures none.
var DefaultSummaryAttrs = []string{"hn", "o"}

// SuffixTerms enumerates the lowercase attr=value terms of a registration
// suffix DN — the vocabulary one child contributes to its shard's summary.
func SuffixTerms(suffix ldap.DN) []string {
	var out []string
	for _, rdn := range suffix {
		for _, ava := range rdn {
			out = append(out, Key(ava.Attr, ava.Value))
		}
	}
	return out
}

// QueryTerms extracts the terms a matching entry's provider suffix must
// contain: top-level conjunctive equality assertions on the given
// attributes. Terms under OR or NOT are not required and contribute
// nothing (fail open).
func QueryTerms(f *ldap.Filter, attrs []string) []string {
	var out []string
	var walk func(*ldap.Filter)
	walk = func(g *ldap.Filter) {
		switch g.Kind {
		case ldap.FilterAnd:
			for _, sub := range g.Subs {
				walk(sub)
			}
		case ldap.FilterEquality:
			a := strings.ToLower(g.Attr)
			for _, want := range attrs {
				if a == want {
					out = append(out, Key(g.Attr, g.Value))
					return
				}
			}
		}
	}
	if f != nil {
		walk(f)
	}
	return out
}
