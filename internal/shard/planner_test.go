package shard

import (
	"testing"

	"mds2/internal/ldap"
)

func newTestPlanner(self string) *Planner {
	ring := NewRing(testMembers(8), 0)
	return NewPlanner(ring, self, 2, ldap.MustParseDN("o=grid"), nil)
}

func TestRegistrationKey(t *testing.T) {
	p := newTestPlanner("s00")
	cases := []struct {
		suffix string
		key    string
		keyed  bool
	}{
		{"hn=HostA, o=grid", "hn=hosta", true},
		{"hn=h1, o=site3, o=grid", "hn=h1", true},
		{"o=site3, o=grid", "", false}, // non-key leaf: broadcast
		{"", "", false},
		{"queue=default+hn=h1, o=grid", "", false}, // multi-valued leaf
	}
	for _, c := range cases {
		key, keyed := p.RegistrationKey(c.suffix)
		if key != c.key || keyed != c.keyed {
			t.Errorf("RegistrationKey(%q) = (%q, %v), want (%q, %v)",
				c.suffix, key, keyed, c.key, c.keyed)
		}
	}
}

func TestOwnershipMatchesOwners(t *testing.T) {
	p := newTestPlanner("s00")
	owned := 0
	for i := 0; i < 400; i++ {
		suffix := "hn=h" + string(rune('a'+i%26)) + string(rune('a'+i/26)) + ", o=grid"
		owners := p.Owners(suffix)
		if len(owners) != 2 {
			t.Fatalf("suffix %q: %d owners, want 2", suffix, len(owners))
		}
		has := false
		for _, m := range owners {
			if m.ID == "s00" {
				has = true
			}
		}
		if has != p.OwnsRegistration(suffix) {
			t.Fatalf("suffix %q: OwnsRegistration disagrees with Owners", suffix)
		}
		if has {
			owned++
		}
	}
	if owned == 0 || owned == 400 {
		t.Fatalf("implausible ownership distribution: %d/400", owned)
	}
	// Broadcast registration is owned by everyone.
	if !p.OwnsRegistration("o=site9, o=grid") {
		t.Fatal("broadcast registration should be owned everywhere")
	}
	if len(p.Owners("o=site9, o=grid")) != 8 {
		t.Fatal("broadcast registration should list all members as owners")
	}
}

func mustFilter(t *testing.T, s string) *ldap.Filter {
	t.Helper()
	f, err := ldap.ParseFilter(s)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestPlanRoutability(t *testing.T) {
	p := newTestPlanner("s00")
	grid := ldap.MustParseDN("o=grid")
	cases := []struct {
		name     string
		base     ldap.DN
		filter   string
		routable bool
		keys     []string
	}{
		{"base names host", ldap.MustParseDN("hn=h7, o=grid"), "(objectclass=*)", true, []string{"hn=h7"}},
		{"base below host", ldap.MustParseDN("queue=default, hn=h7, o=grid"), "(objectclass=*)", true, []string{"hn=h7"}},
		{"equality filter", grid, "(hn=H7)", true, []string{"hn=h7"}},
		{"and with key conjunct", grid, "(&(objectclass=mdshost)(hn=h7))", true, []string{"hn=h7"}},
		{"or all routable", grid, "(|(hn=h1)(hn=h2))", true, []string{"hn=h1", "hn=h2"}},
		{"or with unroutable branch", grid, "(|(hn=h1)(cpu=4))", false, nil},
		{"not unroutable", grid, "(!(hn=h1))", false, nil},
		{"plain attr filter", grid, "(cpu=4)", false, nil},
		{"presence", grid, "(hn=*)", false, nil},
		{"base outside suffix", ldap.MustParseDN("o=elsewhere"), "(hn=h1)", true, []string{"hn=h1"}},
	}
	for _, c := range cases {
		pl := p.Plan(c.base, mustFilter(t, c.filter))
		if pl.Routable != c.routable {
			t.Errorf("%s: routable=%v, want %v", c.name, pl.Routable, c.routable)
			continue
		}
		if !c.routable {
			if len(pl.Remote) != 7 {
				t.Errorf("%s: scatter should target 7 peers, got %d", c.name, len(pl.Remote))
			}
			continue
		}
		if len(pl.Keys) != len(c.keys) {
			t.Errorf("%s: keys=%v, want %v", c.name, pl.Keys, c.keys)
			continue
		}
		for i := range c.keys {
			if pl.Keys[i] != c.keys[i] {
				t.Errorf("%s: keys=%v, want %v", c.name, pl.Keys, c.keys)
			}
		}
	}
}

func TestPlanSkipsSelfOwnedKeys(t *testing.T) {
	ring := NewRing(testMembers(8), 0)
	grid := ldap.MustParseDN("o=grid")
	// Find a key and make its primary the planner's self: no remote hop.
	key := "hn=h42"
	owners := ring.Owners(key, 2)
	self := NewPlanner(ring, owners[0].ID, 2, grid, nil)
	pl := self.Plan(ldap.MustParseDN("hn=h42, o=grid"), nil)
	if !pl.Routable || len(pl.Remote) != 0 {
		t.Fatalf("owner's plan should have no remote members: %+v", pl)
	}
	// A non-owner must plan remote hops to the owners, in failover order.
	var outsider string
	for _, m := range ring.Members() {
		if m.ID != owners[0].ID && m.ID != owners[1].ID {
			outsider = m.ID
			break
		}
	}
	p2 := NewPlanner(ring, outsider, 2, grid, nil)
	pl2 := p2.Plan(ldap.MustParseDN("hn=h42, o=grid"), nil)
	if !pl2.Routable || len(pl2.Remote) != 2 {
		t.Fatalf("outsider's plan should target both owners: %+v", pl2)
	}
	of := pl2.OwnersFor(key)
	if len(of) != 2 || of[0].ID != owners[0].ID || of[1].ID != owners[1].ID {
		t.Fatalf("OwnersFor(%s) = %v, want failover order %v", key, of, owners)
	}
}

func TestSummaryTerms(t *testing.T) {
	terms := SuffixTerms(ldap.MustParseDN("hn=HostA, o=Site3, o=grid"))
	want := []string{"hn=hosta", "o=site3", "o=grid"}
	if len(terms) != len(want) {
		t.Fatalf("terms = %v, want %v", terms, want)
	}
	for i := range want {
		if terms[i] != want[i] {
			t.Fatalf("terms = %v, want %v", terms, want)
		}
	}

	q := QueryTerms(mustFilter(t, "(&(objectclass=mdshost)(o=Site3))"), DefaultSummaryAttrs)
	if len(q) != 1 || q[0] != "o=site3" {
		t.Fatalf("query terms = %v, want [o=site3]", q)
	}
	// Terms under OR/NOT must not be required.
	if q := QueryTerms(mustFilter(t, "(|(o=site3)(o=site4))"), DefaultSummaryAttrs); len(q) != 0 {
		t.Fatalf("OR branches should contribute no required terms, got %v", q)
	}
	if q := QueryTerms(mustFilter(t, "(!(o=site3))"), DefaultSummaryAttrs); len(q) != 0 {
		t.Fatalf("NOT should contribute no required terms, got %v", q)
	}
}
