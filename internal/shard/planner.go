package shard

import (
	"sort"
	"strings"

	"mds2/internal/ldap"
)

// Planner decides where registrations live and where queries go. One
// planner instance is shared by a shard's registrar hooks and its search
// strategy; it is immutable after construction.
type Planner struct {
	Ring *Ring
	// Self is this node's shard ID ("" on a pure client/registrar that is
	// not itself a ring member).
	Self string
	// Replicas is K: how many distinct shards own each keyed registration.
	Replicas int
	// Suffix is the directory suffix the ring partitions; query bases are
	// interpreted relative to it.
	Suffix ldap.DN
	// KeyAttrs are the attribute types whose DN components and equality
	// assertions carry partition keys, lowercase. Defaults to ["hn"] — the
	// paper's host-naming attribute — via NewPlanner.
	KeyAttrs []string
}

// DefaultKeyAttrs is the partition-key attribute set used when none is
// configured.
var DefaultKeyAttrs = []string{"hn"}

// NewPlanner builds a planner; replicas < 1 becomes 1, empty keyAttrs
// becomes DefaultKeyAttrs.
func NewPlanner(ring *Ring, self string, replicas int, suffix ldap.DN, keyAttrs []string) *Planner {
	if replicas < 1 {
		replicas = 1
	}
	if len(keyAttrs) == 0 {
		keyAttrs = DefaultKeyAttrs
	}
	lowered := make([]string, len(keyAttrs))
	for i, a := range keyAttrs {
		lowered[i] = strings.ToLower(strings.TrimSpace(a))
	}
	return &Planner{Ring: ring, Self: self, Replicas: replicas, Suffix: suffix, KeyAttrs: lowered}
}

func (p *Planner) keyAttr(attr string) bool {
	attr = strings.ToLower(attr)
	for _, a := range p.KeyAttrs {
		if a == attr {
			return true
		}
	}
	return false
}

// Key builds the canonical partition key for an attribute-value pair. The
// same canonicalization is applied on the registration path and the query
// path, which is what makes routing correct.
func Key(attr, value string) string {
	return strings.ToLower(strings.TrimSpace(attr)) + "=" + strings.ToLower(strings.TrimSpace(value))
}

// RegistrationKey extracts the partition key from a registration's suffix
// DN (grrp.Message.SuffixDN). The key is the leftmost single-AVA RDN whose
// attribute is a key attribute — e.g. "hn=hostX, o=grid" keys to
// "hn=hostx". keyed=false means the registration is not partitionable
// (unparsable DN, multi-valued leaf, or a non-key attribute) and must be
// broadcast to every shard to preserve query completeness.
func (p *Planner) RegistrationKey(suffixDN string) (key string, keyed bool) {
	dn, err := ldap.ParseDN(suffixDN)
	if err != nil {
		return "", false
	}
	return p.RegistrationKeyDN(dn)
}

// RegistrationKeyDN is RegistrationKey for an already parsed suffix.
func (p *Planner) RegistrationKeyDN(dn ldap.DN) (key string, keyed bool) {
	if dn.IsZero() {
		return "", false
	}
	leaf := dn.Leaf()
	if len(leaf) != 1 || !p.keyAttr(leaf[0].Attr) {
		return "", false
	}
	return Key(leaf[0].Attr, leaf[0].Value), true
}

// Owners returns the shard members that must hold the registration with the
// given suffix DN, primary first. Unkeyed registrations are owned by every
// member.
func (p *Planner) Owners(suffixDN string) []Member {
	key, keyed := p.RegistrationKey(suffixDN)
	if !keyed {
		return p.Ring.Members()
	}
	return p.Ring.Owners(key, p.Replicas)
}

// OwnsRegistration reports whether this node must hold the registration.
// A planner with no Self owns nothing; a registration that is not keyed is
// owned everywhere.
func (p *Planner) OwnsRegistration(suffixDN string) bool {
	if p.Self == "" {
		return false
	}
	key, keyed := p.RegistrationKey(suffixDN)
	if !keyed {
		return true
	}
	return p.Ring.Owns(p.Self, key, p.Replicas)
}

// Plan is a routing decision for one search.
type Plan struct {
	// Routable is true when the query provably touches only the listed
	// keys' owners (plus broadcast registrations, which every shard holds).
	Routable bool
	// Keys are the partition keys the query names (routable plans only),
	// sorted.
	Keys []string
	// Remote are the distinct shards, other than Self, that must be
	// queried. For routable plans these are owners of keys Self does not
	// own; for scatter plans, every other ring member. Failover order is
	// preserved per key on routable plans.
	Remote []Member
	// remoteByKey, for routable plans, preserves per-key owner failover
	// order; exposed through OwnersFor.
	remoteByKey map[string][]Member
}

// OwnersFor returns the failover-ordered owners for one routable key (Self
// excluded). Nil for keys not in the plan.
func (pl *Plan) OwnersFor(key string) []Member { return pl.remoteByKey[key] }

// Plan routes a search. Key extraction prefers the base DN: a base at or
// below provider level ("hn=hostX, o=grid") pins the key set directly.
// Otherwise the filter is consulted: an equality assertion on a key
// attribute routes; an AND routes if any conjunct routes (answering a
// superset of conjuncts is sound because every result still passes the full
// filter at the shard); an OR routes only if every branch routes (the union
// of branch keys); NOT and every non-equality assertion are unroutable.
// Unroutable searches scatter to the whole ring; completeness still holds
// because the scatter set is every member.
func (p *Planner) Plan(base ldap.DN, filter *ldap.Filter) Plan {
	keys, routable := p.baseKeys(base)
	if !routable {
		keys, routable = p.filterKeys(filter)
	}
	if !routable {
		return Plan{Remote: p.others(p.Ring.Members())}
	}
	sort.Strings(keys)
	keys = dedupStrings(keys)
	pl := Plan{Routable: true, Keys: keys, remoteByKey: map[string][]Member{}}
	seen := map[string]bool{}
	for _, k := range keys {
		owners := p.Ring.Owners(k, p.Replicas)
		if p.Self != "" {
			// Self already holds this key's registrations locally; no
			// remote hop needed for it.
			if memberIn(owners, p.Self) {
				continue
			}
		}
		remote := p.others(owners)
		pl.remoteByKey[k] = remote
		for _, m := range remote {
			if !seen[m.ID] {
				seen[m.ID] = true
				pl.Remote = append(pl.Remote, m)
			}
		}
	}
	return pl
}

// baseKeys derives keys from the search base: if the base names components
// below the partitioned suffix and any of those components is a single-AVA
// key attribute, the query can only match entries under that component.
func (p *Planner) baseKeys(base ldap.DN) ([]string, bool) {
	rel, ok := base.RelativeTo(p.Suffix)
	if !ok || rel.IsZero() {
		return nil, false
	}
	for _, rdn := range rel {
		if len(rdn) == 1 && p.keyAttr(rdn[0].Attr) {
			return []string{Key(rdn[0].Attr, rdn[0].Value)}, true
		}
	}
	return nil, false
}

// filterKeys derives keys from the filter per the routing rules above.
func (p *Planner) filterKeys(f *ldap.Filter) ([]string, bool) {
	if f == nil {
		return nil, false
	}
	switch f.Kind {
	case ldap.FilterEquality:
		if p.keyAttr(f.Attr) {
			return []string{Key(f.Attr, f.Value)}, true
		}
		return nil, false
	case ldap.FilterAnd:
		// The first routable conjunct wins: querying a superset of shards
		// relative to the full conjunction is sound, and one key set keeps
		// fan-out minimal in the common (hn=X)(objectclass=...) shape.
		for _, sub := range f.Subs {
			if keys, ok := p.filterKeys(sub); ok {
				return keys, true
			}
		}
		return nil, false
	case ldap.FilterOr:
		var all []string
		for _, sub := range f.Subs {
			keys, ok := p.filterKeys(sub)
			if !ok {
				return nil, false
			}
			all = append(all, keys...)
		}
		return all, len(f.Subs) > 0
	default:
		return nil, false
	}
}

// others filters Self out of a member list, preserving order.
func (p *Planner) others(ms []Member) []Member {
	out := make([]Member, 0, len(ms))
	for _, m := range ms {
		if m.ID != p.Self {
			out = append(out, m)
		}
	}
	return out
}

func memberIn(ms []Member, id string) bool {
	for _, m := range ms {
		if m.ID == id {
			return true
		}
	}
	return false
}

func dedupStrings(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}
