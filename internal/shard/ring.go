// Package shard partitions a GIIS replica set's registration namespace so
// that no single directory node holds the whole soft-state registry — the
// §11.1 argument that VO-scale information services must be decentralized,
// taken to production scale. A consistent-hash ring assigns each provider
// registration to K owner shards (replication tolerates a shard failure),
// and a query planner routes searches to owning shards when the query names
// a partition key, falling back to scatter-gather across the ring when it
// does not. DESIGN.md §11 records the DN-subtree vs consistent-hash
// decision.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"mds2/internal/ldap"
)

// Control and extension OIDs (under the same private arc as the obs trace
// controls).
const (
	// OIDShardLocal marks a search as a peer shard's sub-query: the
	// receiving shard answers only from its own children and never fans out
	// again, which is what terminates proxy chains after one hop.
	OIDShardLocal = "1.3.6.1.4.1.57846.2.1"
	// OIDShardSummary is the extended operation returning a shard's Bloom
	// summary of its owned registrations' namespace terms, the per-shard
	// pre-filter peers consult before scatter fan-out (§5.1 lossy
	// aggregation).
	OIDShardSummary = "1.3.6.1.4.1.57846.2.2"
)

// Member is one shard of the ring: a GIIS replica identified by its shard
// ID, reachable at a GRIP URL.
type Member struct {
	ID  string
	URL ldap.URL
}

// DefaultVnodes is the virtual-node count per member when NewRing is given
// zero. 128 points per shard keeps the worst shard within ~15% of the mean
// at realistic ring sizes (TestRingBalance pins this).
const DefaultVnodes = 128

// Ring is an immutable consistent-hash ring over a shard set. Keys hash to
// a point; a key's K owners are the first K distinct members at or after
// that point walking clockwise. Immutability is deliberate: every node and
// every registrar must agree on placement, so the ring is configuration,
// not state.
type Ring struct {
	members []Member
	points  []point
	vnodes  int
}

type point struct {
	h uint64
	m int // index into members
}

// NewRing builds a ring from the member set; vnodes <= 0 selects
// DefaultVnodes. Member order does not affect placement (points are keyed
// by member ID), so differently ordered configurations agree.
func NewRing(members []Member, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	ms := append([]Member(nil), members...)
	sort.Slice(ms, func(i, j int) bool { return ms[i].ID < ms[j].ID })
	r := &Ring{members: ms, vnodes: vnodes}
	r.points = make([]point, 0, len(ms)*vnodes)
	for i, m := range ms {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{h: hashString(m.ID + "#" + strconv.Itoa(v)), m: i})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		return r.points[i].m < r.points[j].m
	})
	return r
}

func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	v := h.Sum64()
	// FNV alone leaves sequential inputs ("s0#1", "s0#2", …) correlated,
	// which skews vnode placement far past the balance bound; a murmur-style
	// avalanche finalizer decorrelates them.
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	v *= 0xc4ceb9fe1a85ec53
	v ^= v >> 33
	return v
}

// Members returns the member set sorted by ID; callers must not mutate it.
func (r *Ring) Members() []Member { return r.members }

// Size returns the member count.
func (r *Ring) Size() int { return len(r.members) }

// Member looks a member up by ID.
func (r *Ring) Member(id string) (Member, bool) {
	for _, m := range r.members {
		if m.ID == id {
			return m, true
		}
	}
	return Member{}, false
}

// Owners returns the k distinct members owning key, in failover order: the
// first entry is the primary, the rest are the replicas a client or
// coordinator tries next. k is clamped to the ring size. An empty key means
// "not partitionable" and is owned by every member (broadcast placement).
func (r *Ring) Owners(key string, k int) []Member {
	if len(r.members) == 0 {
		return nil
	}
	if key == "" || k >= len(r.members) {
		return r.members
	}
	if k < 1 {
		k = 1
	}
	h := hashString(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	out := make([]Member, 0, k)
	taken := make(map[int]bool, k)
	for n := 0; n < len(r.points) && len(out) < k; n++ {
		p := r.points[(i+n)%len(r.points)]
		if taken[p.m] {
			continue
		}
		taken[p.m] = true
		out = append(out, r.members[p.m])
	}
	return out
}

// Owns reports whether the member with the given ID is among key's k
// owners.
func (r *Ring) Owns(id, key string, k int) bool {
	for _, m := range r.Owners(key, k) {
		if m.ID == id {
			return true
		}
	}
	return false
}

// ParseRing parses the CLI ring specification "id=url,id=url,...", e.g.
// "s0=ldap://a:2136,s1=ldap://b:2136". IDs must be unique and non-empty.
func ParseRing(spec string) ([]Member, error) {
	var out []Member
	seen := map[string]bool{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		eq := strings.Index(part, "=")
		if eq <= 0 {
			return nil, fmt.Errorf("shard: ring entry %q is not id=url", part)
		}
		id, rawURL := part[:eq], part[eq+1:]
		if seen[id] {
			return nil, fmt.Errorf("shard: duplicate ring member %q", id)
		}
		seen[id] = true
		u, err := ldap.ParseURL(rawURL)
		if err != nil {
			return nil, fmt.Errorf("shard: ring member %q: %w", id, err)
		}
		out = append(out, Member{ID: id, URL: u})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("shard: empty ring spec")
	}
	return out, nil
}
