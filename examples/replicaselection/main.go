// Replica selection: the §1 data-grid scenario — respond to a request for
// the "best" copy of a replicated file by combining the VO directory's
// replica catalog with on-demand NWS bandwidth predictions between the
// client and each storage system.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"mds2/internal/core"
	"mds2/internal/gris"
	"mds2/internal/ldap"
	"mds2/internal/nws"
	"mds2/internal/providers"
)

func main() {
	grid, err := core.NewSimGrid(21)
	if err != nil {
		log.Fatal(err)
	}
	defer grid.Close()
	weather := nws.NewService()

	dir, err := grid.AddDirectory("giis.datagrid", core.DirectoryOptions{Suffix: "vo=datagrid"})
	if err != nil {
		log.Fatal(err)
	}

	// Three storage sites each hold a replica of the same logical file and
	// publish replica objects plus NWS link information.
	const lfn = "lfn:/physics/run42/events.dat"
	sites := []string{"storage-east", "storage-west", "storage-eu"}
	for _, site := range sites {
		site := site
		h, err := grid.AddHost(site, core.HostOptions{Org: "datagrid", WithNWS: weather})
		if err != nil {
			log.Fatal(err)
		}
		// A replica-catalog backend for this site.
		h.GRIS.Register(&providers.Func{
			Label:   "replicas",
			Subtree: h.Suffix.ChildAVA("rc", "catalog"),
			AttrNames: []string{
				"lfn", "url", "sizebytes", "store",
			},
			TTL: time.Minute,
			Generate: func(q *gris.Query) ([]*ldap.Entry, error) {
				e := ldap.NewEntry(h.Suffix.ChildAVA("rc", "catalog").ChildAVA("lfn", lfn)).
					Add("objectclass", "replica").
					Add("lfn", lfn).
					Add("url", fmt.Sprintf("gridftp://%s/data/run42/events.dat", site)).
					Add("sizebytes", "2147483648").
					Add("store", site)
				return []*ldap.Entry{e}, nil
			},
		})
		h.RegisterWith(dir, "datagrid", 10*time.Second, time.Minute)
	}
	waitFor(func() bool { return len(dir.GIIS.Children()) == len(sites) })

	client, err := dir.Client("client-site")
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// Step 1 — find every replica of the logical file through the VO view.
	replicas, err := client.Search(ldap.MustParseDN("vo=datagrid"),
		fmt.Sprintf("(&(objectclass=replica)(lfn=%s))", escapeFilter(lfn)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("found %d replicas of %s\n", len(replicas), lfn)

	// Step 2 — for each holding site, ask its NWS provider for predicted
	// bandwidth from the client (lazily measured, §4.1). Several probes
	// build forecaster history.
	type option struct {
		site string
		url  string
		mbps float64
	}
	var options []option
	for _, r := range replicas {
		site := r.First("store")
		entries, err := client.Search(ldap.MustParseDN("vo=datagrid"),
			fmt.Sprintf("(&(objectclass=networklink)(src=client-site)(dst=%s))", site))
		if err != nil || len(entries) == 0 {
			continue
		}
		for i := 0; i < 5; i++ { // repeated probes feed the forecasters
			entries, _ = client.Search(ldap.MustParseDN("vo=datagrid"),
				fmt.Sprintf("(&(objectclass=networklink)(src=client-site)(dst=%s))", site))
		}
		e := entries[0]
		mbps, ok := e.Float("predictedbandwidthmbps")
		if !ok {
			mbps, _ = e.Float("bandwidthmbps")
		}
		options = append(options, option{site: site, url: r.First("url"), mbps: mbps})
	}
	sort.Slice(options, func(i, j int) bool { return options[i].mbps > options[j].mbps })

	fmt.Println("\npredicted bandwidth to each holding site:")
	for _, o := range options {
		fmt.Printf("  %-14s %7.1f Mbps  %s\n", o.site, o.mbps, o.url)
	}
	if len(options) > 0 {
		const sizeGB = 2.0
		seconds := sizeGB * 8 * 1024 / options[0].mbps
		fmt.Printf("\n=> fetch from %s (estimated transfer %.0fs for 2 GiB)\n",
			options[0].site, seconds)
	}
	fmt.Printf("\nNWS experiments run on demand: %d (no link was pre-measured)\n", weather.Measured())
}

func escapeFilter(s string) string {
	var out []byte
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '*', '(', ')', '\\':
			out = append(out, '\\')
		}
		out = append(out, s[i])
	}
	return string(out)
}

func waitFor(cond func() bool) {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	log.Fatal("replicaselection: condition never settled")
}
