// Adaptation: the §1 application-adaptation scenario — an agent monitors
// both a running application and external resource availability, and
// modifies the application's behaviour (accuracy, algorithm) and resource
// consumption (migration) when conditions change. The agent combines three
// information sources the grid exposes: fresh load enquiries, the §6
// archival extension for trend analysis, and NWS bandwidth predictions for
// the migration decision.
package main

import (
	"fmt"
	"log"
	"time"

	"mds2/internal/core"
	"mds2/internal/gris"
	"mds2/internal/history"
	"mds2/internal/hostinfo"
	"mds2/internal/ldap"
	"mds2/internal/nws"
)

// app is the running application the agent steers.
type app struct {
	host      string
	algorithm string // "precise" or "approximate"
	accuracy  float64
}

func main() {
	grid, err := core.NewSimGrid(55)
	if err != nil {
		log.Fatal(err)
	}
	defer grid.Close()
	clock := grid.SimClock()
	weather := nws.NewService()

	// Two candidate hosts: the app starts on "primary"; "fallback" is the
	// migration target. Both record history and expose NWS links.
	primary, err := grid.AddHost("primary", core.HostOptions{
		Org:             "adapt",
		Spec:            hostinfo.Spec{OS: "linux", OSVer: "1", CPUType: "ia32", CPUCount: 4, MemoryMB: 2048},
		Seed:            2, // evolves toward high load in this scenario
		HistoryInterval: time.Minute,
		DynamicTTL:      time.Second,
		WithNWS:         weather,
	})
	if err != nil {
		log.Fatal(err)
	}
	fallback, err := grid.AddHost("fallback", core.HostOptions{
		Org:        "adapt",
		Spec:       hostinfo.Spec{OS: "linux", OSVer: "1", CPUType: "ia32", CPUCount: 16, MemoryMB: 8192},
		Seed:       9,
		DynamicTTL: time.Second,
		WithNWS:    weather,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The application publishes its own status through the primary GRIS —
	// applications are information providers too (§3: "a provider for a
	// running application might provide information about its configuration
	// and current status").
	application := &app{host: "primary", algorithm: "precise", accuracy: 1.0}
	appDN := primary.Suffix.ChildAVA("app", "simulation")
	primary.GRIS.Register(&appBackend{app: application, dn: appDN})

	agent, err := primary.Client("agent")
	if err != nil {
		log.Fatal(err)
	}
	defer agent.Close()

	decide := func(round int) {
		// Fresh load at the current host.
		entries, err := agent.Search(primary.Suffix, "(objectclass=loadaverage)")
		if err != nil || len(entries) == 0 {
			return
		}
		load, _ := entries[0].Float("load5")
		cpus := float64(primary.Host.Spec.CPUCount)

		// Trend over the last 10 minutes from the archival extension.
		to := clock.Now()
		from := to.Add(-10 * time.Minute)
		req := fmt.Sprintf("dn: %s\nattr: load5\nfrom: %s\nto: %s\nop: stats\n",
			primary.Suffix.ChildAVA("perf", "load"),
			from.Format(time.RFC3339), to.Format(time.RFC3339))
		stats, err := agent.Extended(history.OIDHistory, []byte(req))
		if err != nil {
			stats = []byte("(no history)")
		}

		fmt.Printf("round %d: load5=%.2f/%v cpus; 10m history: %s", round, load, cpus,
			string(stats))
		switch {
		case load > 1.5*cpus && application.host == "primary":
			// Sustained overload: consider migration. Check predicted
			// bandwidth to the fallback for state transfer.
			links, err := agent.Search(primary.Suffix,
				"(&(objectclass=networklink)(src=primary)(dst=fallback))")
			if err == nil && len(links) == 1 {
				bw, _ := links[0].Float("bandwidthmbps")
				fmt.Printf("  -> MIGRATE to fallback (state transfer at %.1f Mbps predicted)\n", bw)
				application.host = "fallback"
				_ = fallback
			}
		case load > float64(cpus) && application.algorithm == "precise":
			fmt.Println("  -> DEGRADE: switch to approximate algorithm (accuracy 0.85)")
			application.algorithm = "approximate"
			application.accuracy = 0.85
		case load < 0.5*cpus && application.algorithm == "approximate":
			fmt.Println("  -> RESTORE: resume precise algorithm")
			application.algorithm = "precise"
			application.accuracy = 1.0
		default:
			fmt.Println("  -> steady")
		}
	}

	// Drive the scenario: other users pile work onto the primary host, its
	// load climbs past the application's comfort thresholds, and the agent
	// reacts — degrade first, migrate when the overload persists.
	for round := 1; round <= 8; round++ {
		primary.Host.SetDemand(float64(round) * 1.4) // competing workload grows
		for i := 0; i < 10; i++ {
			primary.Host.Step(time.Minute)
			clock.Advance(time.Minute) // history records at 1/min
			time.Sleep(2 * time.Millisecond)
		}
		decide(round)
		if application.host != "primary" {
			break
		}
	}
	fmt.Printf("\nfinal application state: host=%s algorithm=%s accuracy=%.2f\n",
		application.host, application.algorithm, application.accuracy)
}

// appBackend publishes the application object.
type appBackend struct {
	app *app
	dn  ldap.DN
}

func (b *appBackend) Name() string            { return "application" }
func (b *appBackend) Suffix() ldap.DN         { return b.dn }
func (b *appBackend) Attributes() []string    { return []string{"app", "status", "algorithm", "accuracy"} }
func (b *appBackend) CacheTTL() time.Duration { return 0 }
func (b *appBackend) Entries(*gris.Query) ([]*ldap.Entry, error) {
	return []*ldap.Entry{ldap.NewEntry(b.dn).
		Add("objectclass", "application").
		Add("app", "simulation").
		Add("status", "running").
		Add("hn", b.app.host).
		Add("algorithm", b.app.algorithm).
		Add("accuracy", fmt.Sprintf("%.2f", b.app.accuracy))}, nil
}
