// Quickstart: the Figure 2 flow in one program. A simulated grid runs two
// information providers (GRIS) and one aggregate directory (GIIS); the
// providers announce themselves over GRRP, a user discovers them with a
// GRIP search at the directory, then looks one up directly at its
// authoritative provider.
package main

import (
	"fmt"
	"log"
	"time"

	"mds2/internal/core"
	"mds2/internal/hostinfo"
	"mds2/internal/ldap"
	"mds2/internal/ldap/ldif"
)

func main() {
	grid, err := core.NewSimGrid(1)
	if err != nil {
		log.Fatal(err)
	}
	defer grid.Close()

	// One VO-level aggregate directory.
	dir, err := grid.AddDirectory("giis.alliance", core.DirectoryOptions{Suffix: "vo=alliance"})
	if err != nil {
		log.Fatal(err)
	}

	// Two resources with different characters.
	big, err := grid.AddHost("bigiron", core.HostOptions{
		Org: "center1",
		Spec: hostinfo.Spec{OS: "mips irix", OSVer: "6.5", CPUType: "mips",
			CPUCount: 64, MemoryMB: 16384},
	})
	if err != nil {
		log.Fatal(err)
	}
	desktop, err := grid.AddHost("desktop", core.HostOptions{Org: "center1"})
	if err != nil {
		log.Fatal(err)
	}

	// Soft-state registration: each provider sustains a refresh stream.
	big.RegisterWith(dir, "alliance", 10*time.Second, time.Minute)
	desktop.RegisterWith(dir, "alliance", 10*time.Second, time.Minute)
	waitFor(func() bool { return len(dir.GIIS.Children()) == 2 })
	fmt.Printf("directory %s knows %d providers\n\n", dir.Name, len(dir.GIIS.Children()))

	// Discovery: "which computers does this VO have?"
	user, err := dir.Client("user")
	if err != nil {
		log.Fatal(err)
	}
	defer user.Close()
	computers, err := user.Search(ldap.MustParseDN("vo=alliance"), "(objectclass=computer)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("discovery at the directory — (objectclass=computer):")
	fmt.Println(ldif.Marshal(computers))

	// Refinement: "which have at least 32 CPUs?"
	bigOnes, err := user.Search(ldap.MustParseDN("vo=alliance"),
		"(&(objectclass=computer)(cpucount>=32))")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrefined search (cpucount>=32): %d match\n", len(bigOnes))

	// Enquiry: look the resource up at its authoritative provider —
	// "following discovery, a client can always refresh interesting
	// information by directly consulting the authoritative source" (§3).
	direct, err := big.Client("user")
	if err != nil {
		log.Fatal(err)
	}
	defer direct.Close()
	fresh, err := direct.Search(big.Suffix, "(objectclass=loadaverage)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndirect enquiry at the provider — current load:")
	fmt.Println(ldif.Marshal(fresh))
}

func waitFor(cond func() bool) {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	log.Fatal("quickstart: condition never settled")
}
