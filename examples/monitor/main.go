// Monitor: the §1 troubleshooting scenario — a service that watches grid
// resources for anomalous behaviour. It combines the two delivery models
// of §6: GRIP subscriptions (push) stream load changes from each provider,
// while the GRRP registration stream doubles as an unreliable failure
// detector (§4.3) flagging providers that fall silent.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"mds2/internal/core"
	"mds2/internal/detect"
	"mds2/internal/grip"
	"mds2/internal/grrp"
	"mds2/internal/softstate"
)

func main() {
	grid, err := core.NewSimGrid(33)
	if err != nil {
		log.Fatal(err)
	}
	defer grid.Close()
	clock := grid.SimClock()

	dir, err := grid.AddDirectory("giis.ops", core.DirectoryOptions{Suffix: "vo=ops"})
	if err != nil {
		log.Fatal(err)
	}

	const refresh, ttl = 10 * time.Second, 35 * time.Second
	var hosts []*core.HostNode
	var regs []grrp.Registration
	for i := 0; i < 3; i++ {
		h, err := grid.AddHost(fmt.Sprintf("worker%d", i), core.HostOptions{
			Org: "ops", Seed: int64(i + 1), DynamicTTL: time.Second})
		if err != nil {
			log.Fatal(err)
		}
		regs = append(regs, h.RegisterWith(dir, "ops", refresh, ttl))
		hosts = append(hosts, h)
	}
	waitFor(func() bool { return len(dir.GIIS.Children()) == 3 })

	// The failure detector consumes the same registration stream the
	// directory indexes from: tap the directory's registry events.
	detector := detect.New(ttl, clock)
	events, cancelEvents := dir.GIIS.Receiver().Registry.Subscribe()
	defer cancelEvents()
	go func() {
		for ev := range events {
			// Only arrivals count as life signs; expiry events are the
			// registry's own conclusion, not evidence.
			if ev.Type == softstate.EventJoined || ev.Type == softstate.EventRefreshed {
				detector.Observe(ev.Key)
			}
		}
	}()

	// Subscribe to every worker's load average (push mode).
	var mu sync.Mutex
	lastLoad := map[string]float64{}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for _, h := range hosts {
		h := h
		c, err := h.Client("monitor")
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()
		go c.Subscribe(ctx, h.Suffix, "(objectclass=loadaverage)", false,
			func(u grip.Update) error {
				if v, ok := u.Entry.Float("load5"); ok {
					mu.Lock()
					lastLoad[h.Name] = v
					mu.Unlock()
				}
				return nil
			})
	}

	report := func(phase string) {
		fmt.Printf("--- %s\n", phase)
		detector.Check()
		mu.Lock()
		defer mu.Unlock()
		for _, h := range hosts {
			key := h.URL.String()
			status := detector.Status(key)
			load := lastLoad[h.Name]
			note := ""
			if status == detect.StatusSuspected {
				note = "  <- SUSPECTED FAILED (no registration refresh)"
			} else if load > float64(h.Host.Spec.CPUCount) {
				note = "  <- OVERLOADED"
			}
			fmt.Printf("  %-8s %-9s load5=%.2f%s\n", h.Name, status, load, note)
		}
	}

	// Healthy period: workers evolve, subscriptions deliver.
	for i := 0; i < 6; i++ {
		for _, h := range hosts {
			h.Host.Step(5 * time.Minute)
		}
		clock.Advance(5 * time.Second)
		time.Sleep(5 * time.Millisecond)
	}
	report("steady state (all workers registering and reporting)")

	// worker1 crashes: its registration stream stops.
	fmt.Println("\n*** worker1 stops sending registrations (simulated crash)")
	hosts[1].Registrar().Pause(regs[1])
	for i := 0; i < 6; i++ {
		clock.Advance(10 * time.Second)
		time.Sleep(5 * time.Millisecond)
	}
	report("after one TTL of silence")

	// worker1 comes back.
	fmt.Println("\n*** worker1 resumes")
	hosts[1].Registrar().Resume(regs[1])
	clock.Advance(10 * time.Second)
	waitFor(func() bool {
		detector.Check()
		return detector.Status(hosts[1].URL.String()) == detect.StatusAlive
	})
	report("after recovery")

	s := detector.Stats()
	fmt.Printf("\ndetector stats: %d observations, %d suspicions, %d recoveries\n",
		s.Observations, s.Suspicions, s.Recoveries)
}

func waitFor(cond func() bool) {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	log.Fatal("monitor: condition never settled")
}
