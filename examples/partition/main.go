// Partition: a narrated run of Figures 1 and 4 — a virtual organization
// with replicated aggregate directories splits under a network partition,
// each fragment keeps operating with the resources it can reach, and the
// soft-state registration streams reconverge both directories after the
// network heals, with no explicit recovery protocol.
package main

import (
	"fmt"
	"log"
	"time"

	"mds2/internal/core"
	"mds2/internal/ldap"
)

func main() {
	grid, err := core.NewSimGrid(44)
	if err != nil {
		log.Fatal(err)
	}
	defer grid.Close()
	clock := grid.SimClock()

	// VO-B runs two replicated directories, one per coast.
	east, err := grid.AddDirectory("giis.east", core.DirectoryOptions{Suffix: "vo=b"})
	if err != nil {
		log.Fatal(err)
	}
	west, err := grid.AddDirectory("giis.west", core.DirectoryOptions{Suffix: "vo=b"})
	if err != nil {
		log.Fatal(err)
	}

	const refresh, ttl = 5 * time.Second, 20 * time.Second
	names := []string{"ny1", "ny2", "la1", "la2"}
	for _, n := range names {
		h, err := grid.AddHost(n, core.HostOptions{Org: "b"})
		if err != nil {
			log.Fatal(err)
		}
		// Fault-tolerant registration: every resource registers with both
		// replicated directories (Figure 4).
		h.RegisterWith(east, "b", refresh, ttl)
		h.RegisterWith(west, "b", refresh, ttl)
	}
	waitFor(func() bool {
		return len(east.GIIS.Children()) == 4 && len(west.GIIS.Children()) == 4
	})

	show := func(phase string) {
		fmt.Printf("--- %s\n", phase)
		for _, d := range []*core.DirectoryNode{east, west} {
			fmt.Printf("  %-10s indexes %d providers:", d.Name, len(d.GIIS.Children()))
			for _, c := range d.GIIS.Children() {
				fmt.Printf(" %s", c.Suffix.Leaf()[0].Value)
			}
			fmt.Println()
		}
	}
	query := func(d *core.DirectoryNode, user string) {
		c, err := d.Client(user)
		if err != nil {
			fmt.Printf("  %s: query from %s failed: %v\n", d.Name, user, err)
			return
		}
		defer c.Close()
		entries, err := c.Search(ldap.MustParseDN("vo=b"), "(objectclass=computer)")
		if err != nil {
			fmt.Printf("  %s: query from %s failed: %v\n", d.Name, user, err)
			return
		}
		fmt.Printf("  user at %-9s sees %d computers via %s\n", user, len(entries), d.Name)
	}

	show("connected: replicated directories converge on the same view")
	query(east, "user-east")
	query(west, "user-west")

	fmt.Println("\n*** network partitions: {east coast} | {west coast}")
	grid.Net.SetPartitions(
		[]string{"giis.east", "ny1", "ny2", "user-east"},
		[]string{"giis.west", "la1", "la2", "user-west"},
	)
	// Let the unreachable registrations expire (several refresh TTLs).
	for i := 0; i < 6; i++ {
		clock.Advance(refresh)
		time.Sleep(5 * time.Millisecond)
	}
	show("partitioned: each fragment keeps a consistent view of its side")
	query(east, "user-east")
	query(west, "user-west")
	fmt.Println("  (VO-B operates as two disjoint fragments — Figure 1)")

	fmt.Println("\n*** network heals")
	grid.Net.Heal()
	start := clock.Now()
	waitFor(func() bool {
		clock.Advance(refresh / 2)
		time.Sleep(3 * time.Millisecond)
		return len(east.GIIS.Children()) == 4 && len(west.GIIS.Children()) == 4
	})
	fmt.Printf("reconverged in %v of simulated time — no recovery protocol, just\n", clock.Now().Sub(start))
	fmt.Println("the sustained soft-state registration streams (Figure 4)")
	show("healed")
}

func waitFor(cond func() bool) {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	log.Fatal("partition: condition never settled")
}
