// Superscheduler: the §1 scenario — route a computational request to the
// "best" available computer in a grid of heterogeneous machines, where
// "best" combines architecture, installed capacity, and instantaneous
// load. The broker discovers candidates through the VO directory, refines
// with fresh provider data, and finally uses the matchmaker extension for a
// ranked, join-like decision that the plain filter language cannot express.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"mds2/internal/core"
	"mds2/internal/giis"
	"mds2/internal/hostinfo"
	"mds2/internal/ldap"
	"mds2/internal/ldap/ldif"
)

func main() {
	grid, err := core.NewSimGrid(7)
	if err != nil {
		log.Fatal(err)
	}
	defer grid.Close()

	index := giis.NewCachedIndex(30 * time.Second)
	dir, err := grid.AddDirectory("giis.vo", core.DirectoryOptions{
		Suffix:   "vo=compute",
		Strategy: index,
		Extensions: map[string]giis.Extension{
			core.OIDMatchmake: core.MatchmakeExtension(index),
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	machines := []struct {
		name string
		spec hostinfo.Spec
		seed int64
	}{
		{"cluster-a", hostinfo.Spec{OS: "linux redhat", OSVer: "6.2", CPUType: "ia32", CPUCount: 32, MemoryMB: 8192}, 11},
		{"cluster-b", hostinfo.Spec{OS: "linux redhat", OSVer: "7.0", CPUType: "ia32", CPUCount: 16, MemoryMB: 4096}, 22},
		{"bigiron", hostinfo.Spec{OS: "mips irix", OSVer: "6.5", CPUType: "mips", CPUCount: 64, MemoryMB: 16384}, 33},
		{"desktop", hostinfo.Spec{OS: "linux redhat", OSVer: "6.2", CPUType: "ia32", CPUCount: 2, MemoryMB: 512}, 44},
	}
	hosts := map[string]*core.HostNode{}
	for _, m := range machines {
		h, err := grid.AddHost(m.name, core.HostOptions{Org: "vo", Spec: m.spec, Seed: m.seed})
		if err != nil {
			log.Fatal(err)
		}
		// Let each machine accumulate distinct load history.
		h.Host.Step(time.Duration(m.seed) * 13 * time.Minute)
		h.RegisterWith(dir, "compute", 10*time.Second, time.Minute)
		hosts[m.name] = h
	}
	waitFor(func() bool { return len(dir.GIIS.Children()) == len(machines) })

	broker, err := dir.Client("broker")
	if err != nil {
		log.Fatal(err)
	}
	defer broker.Close()

	// Step 1 — discovery: Linux machines with enough CPUs for the job.
	const needCPUs = 8
	candidates, err := broker.Search(ldap.MustParseDN("vo=compute"),
		fmt.Sprintf("(&(objectclass=computer)(system=linux*)(cpucount>=%d))", needCPUs))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("step 1: %d candidates satisfy static requirements (linux, >=%d cpus)\n",
		len(candidates), needCPUs)

	// Step 2 — refinement with fresh dynamic data from each authoritative
	// provider (the discovery/enquiry split of §4.1).
	type scored struct {
		name string
		free int64
	}
	var ranked []scored
	for _, c := range candidates {
		h := hosts[c.First("hn")]
		direct, err := h.Client("broker")
		if err != nil {
			continue
		}
		entries, err := direct.Search(h.Suffix, "(objectclass=loadaverage)")
		direct.Close()
		if err != nil || len(entries) == 0 {
			continue
		}
		free, _ := entries[0].Int("freecpus")
		ranked = append(ranked, scored{c.First("hn"), free})
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].free > ranked[j].free })
	fmt.Println("step 2: fresh load from authoritative providers:")
	for _, r := range ranked {
		fmt.Printf("  %-10s freecpus=%d\n", r.name, r.free)
	}
	if len(ranked) > 0 {
		fmt.Printf("=> schedule on %s\n\n", ranked[0].name)
	}

	// Step 3 — the same decision as one matchmaking request (§5.3).
	// Warm the index, then ask for a ranked match.
	if _, err := broker.Search(ldap.MustParseDN("vo=compute"), "(objectclass=computer)"); err != nil {
		log.Fatal(err)
	}
	req := fmt.Sprintf("requirements: other.cpucount >= %d && other.load5 < other.cpucount\nrank: other.freecpus\n", needCPUs)
	out, err := broker.Extended(core.OIDMatchmake, []byte(req))
	if err != nil {
		log.Fatal(err)
	}
	matches, err := ldif.ParseString(string(out))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("step 3: one matchmaking request returns the ranked schedule:")
	for i, m := range matches {
		fmt.Printf("  %d. %s\n", i+1, m.First("hn"))
	}
}

func waitFor(cond func() bool) {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	log.Fatal("superscheduler: condition never settled")
}
