// End-to-end test of the command-line tools: real gris and giis processes
// on loopback TCP, registration carried as LDAP adds, queried by
// gridsearch — the deployment story of README.md, verified.
package mds2_test

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildTools compiles the CLI binaries once into a temp dir.
func buildTools(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, tool := range []string{"gris", "giis", "gridsearch", "gridsim", "mdsbench", "gridproxy"} {
		out := filepath.Join(dir, tool)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+tool)
		cmd.Env = os.Environ()
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, b)
		}
	}
	return dir
}

func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port
}

func startTool(t *testing.T, bin string, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	return cmd
}

func waitPort(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if c, err := net.Dial("tcp", addr); err == nil {
			c.Close()
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("nothing listening at %s", addr)
}

func TestCLIDeployment(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildTools(t)
	giisPort := freePort(t)
	grisPort := freePort(t)
	giisAddr := fmt.Sprintf("127.0.0.1:%d", giisPort)
	grisAddr := fmt.Sprintf("127.0.0.1:%d", grisPort)

	startTool(t, filepath.Join(bins, "giis"),
		"-name", "giis.test", "-suffix", "vo=clitest",
		"-listen", giisAddr, "-strategy", "chain", "-vo", "clitest")
	waitPort(t, giisAddr)

	startTool(t, filepath.Join(bins, "gris"),
		"-host", "clihost", "-org", "cliorg",
		"-listen", grisAddr, "-register", giisAddr,
		"-vo", "clitest", "-interval", "200ms", "-ttl", "5s", "-cpus", "16")
	waitPort(t, grisAddr)

	// Direct provider query.
	query := func(server, base, filter string) string {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			out, err := exec.Command(filepath.Join(bins, "gridsearch"),
				"-server", server, "-base", base, filter).CombinedOutput()
			if err == nil && strings.Contains(string(out), "dn:") {
				return string(out)
			}
			if time.Now().After(deadline) {
				t.Fatalf("query %s at %s: %v\n%s", filter, server, err, out)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	direct := query(grisAddr, "hn=clihost, o=cliorg", "(objectclass=computer)")
	if !strings.Contains(direct, "cpucount: 16") {
		t.Fatalf("direct query output:\n%s", direct)
	}
	// Through the directory: registration must have propagated, DNs appear
	// in the VO view namespace.
	viaDir := query(giisAddr, "vo=clitest", "(objectclass=computer)")
	if !strings.Contains(viaDir, "hn=clihost, o=cliorg, vo=clitest") {
		t.Fatalf("directory query output:\n%s", viaDir)
	}
	// The name index lists the provider.
	idx := query(giisAddr, "vo=clitest", "(objectclass=mdsservice)")
	if !strings.Contains(idx, "mdstype: gris") {
		t.Fatalf("name index output:\n%s", idx)
	}
}

// TestCLISingleSignOn drives the full GSI workflow through the tools:
// gridproxy creates a CA, issues identities, delegates a proxy; gris runs
// with GSI enabled; gridsearch authenticates with the proxy.
func TestCLISingleSignOn(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildTools(t)
	dir := t.TempDir()
	gp := filepath.Join(bins, "gridproxy")
	run := func(args ...string) string {
		t.Helper()
		out, err := exec.Command(gp, args...).CombinedOutput()
		if err != nil {
			t.Fatalf("gridproxy %v: %v\n%s", args, err, out)
		}
		return string(out)
	}
	caKey := filepath.Join(dir, "ca.key")
	anchor := filepath.Join(dir, "ca.anchor")
	run("init-ca", "-name", "o=CLI CA", "-ca", caKey, "-anchor", anchor)
	serverKey := filepath.Join(dir, "server.key")
	run("issue", "-ca", caKey, "-subject", "cn=gris.clihost", "-out", serverKey)
	userKey := filepath.Join(dir, "user.key")
	run("issue", "-ca", caKey, "-subject", "cn=alice", "-out", userKey)
	proxyKey := filepath.Join(dir, "user.proxy")
	run("proxy", "-in", userKey, "-out", proxyKey, "-lifetime", "1h")
	if out := run("show", "-in", proxyKey); !strings.Contains(out, "proxy") ||
		!strings.Contains(out, `subject="cn=alice/proxy"`) {
		t.Fatalf("show output:\n%s", out)
	}
	if out := run("verify", "-in", proxyKey, "-anchor", anchor); !strings.Contains(out, "valid") {
		t.Fatalf("verify output:\n%s", out)
	}

	grisAddr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	startTool(t, filepath.Join(bins, "gris"),
		"-host", "clihost", "-org", "cli", "-listen", grisAddr,
		"-keys", serverKey, "-anchor", anchor)
	waitPort(t, grisAddr)

	// Authenticated search through gridsearch with the delegated proxy.
	out, err := exec.Command(filepath.Join(bins, "gridsearch"),
		"-server", grisAddr, "-base", "hn=clihost, o=cli",
		"-proxy", proxyKey, "-anchor", anchor,
		"(objectclass=computer)").CombinedOutput()
	if err != nil {
		t.Fatalf("authenticated gridsearch: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, `server is "cn=gris.clihost"`) {
		t.Fatalf("missing mutual-auth confirmation:\n%s", s)
	}
	if !strings.Contains(s, "hn: clihost") {
		t.Fatalf("missing search results:\n%s", s)
	}
}

func TestCLIGridsimDemo(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildTools(t)
	out, err := exec.Command(filepath.Join(bins, "gridsim"), "-advance", "30s").CombinedOutput()
	if err != nil {
		t.Fatalf("gridsim: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{"3 directories, 6 hosts", "6 entries", "hn=r2.o1, o=o1, vo=alliance"} {
		if !strings.Contains(s, want) {
			t.Fatalf("gridsim output missing %q:\n%s", want, s)
		}
	}
}

func TestCLIMdsbenchList(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildTools(t)
	out, err := exec.Command(filepath.Join(bins, "mdsbench"), "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("mdsbench -list: %v\n%s", err, out)
	}
	for _, want := range []string{"fig1", "fig2", "fig3", "fig4", "fig5",
		"detector", "cache", "scope", "mds1", "bloom", "pushpull", "security", "nws", "matchmake",
		"recover"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("mdsbench list missing %q:\n%s", want, out)
		}
	}
	// And one experiment runs from the CLI.
	out, err = exec.Command(filepath.Join(bins, "mdsbench"), "-exp", "fig3").CombinedOutput()
	if err != nil || !strings.Contains(string(out), "wire round-trip: ok") {
		t.Fatalf("mdsbench -exp fig3: %v\n%s", err, out)
	}
}
